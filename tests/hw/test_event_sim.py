"""Event-driven golden simulator: functional + cycle cross-validation.

These tests are the heart of the hardware validation story: the
scatter-style event-driven execution must match gather-style convolution
exactly, and the analytic cycle model must agree with an operational walk
of the same pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hw.event_sim import EventDrivenLayerSim, reference_conv
from repro.hw.sparse_core import SparseCoreModel


class TestConvEquivalence:
    def test_matches_reference(self, rng):
        spikes = (rng.random((4, 6, 6)) < 0.25).astype(np.float32)
        weight = rng.normal(size=(5, 4, 3, 3)).astype(np.float32)
        sim = EventDrivenLayerSim(nc_count=2, chunk_bits=8)
        result = sim.run_conv(spikes, weight)
        np.testing.assert_allclose(
            result.membrane, reference_conv(spikes, weight), atol=1e-5
        )

    def test_empty_input_zero_membrane(self, rng):
        weight = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        sim = EventDrivenLayerSim()
        result = sim.run_conv(np.zeros((2, 4, 4)), weight)
        np.testing.assert_array_equal(result.membrane, np.zeros((3, 4, 4)))
        assert result.performed_updates == 0

    def test_single_spike_writes_filter(self):
        spikes = np.zeros((1, 5, 5), dtype=np.float32)
        spikes[0, 2, 2] = 1.0
        weight = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        result = EventDrivenLayerSim().run_conv(spikes, weight)
        # Membrane around (2,2) holds the flipped filter (correlation).
        expected = reference_conv(spikes, weight)
        np.testing.assert_allclose(result.membrane, expected, atol=1e-6)
        assert result.performed_updates == 9

    def test_boundary_spike_clips_updates(self):
        spikes = np.zeros((1, 4, 4), dtype=np.float32)
        spikes[0, 0, 0] = 1.0
        weight = np.ones((1, 1, 3, 3), dtype=np.float32)
        result = EventDrivenLayerSim().run_conv(spikes, weight)
        # Corner spike only reaches 4 in-bounds neurons...
        assert result.performed_updates == 4
        # ...but still occupies all 9 pipeline slots.
        assert result.scheduled_updates == 9

    @given(st.integers(0, 2**32 - 1), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_random(self, seed, nc):
        rng = np.random.default_rng(seed)
        cin = int(rng.integers(1, 4))
        cout = int(rng.integers(1, 5))
        size = int(rng.integers(3, 7))
        spikes = (rng.random((cin, size, size)) < 0.3).astype(np.float32)
        weight = rng.normal(size=(cout, cin, 3, 3)).astype(np.float32)
        result = EventDrivenLayerSim(nc_count=nc).run_conv(spikes, weight)
        np.testing.assert_allclose(
            result.membrane, reference_conv(spikes, weight), atol=1e-4
        )


class TestCycleAgreement:
    def test_conv_cycles_match_analytic(self, rng):
        spikes = (rng.random((3, 8, 8)) < 0.2).astype(np.float32)
        weight = rng.normal(size=(6, 3, 3, 3)).astype(np.float32)
        sim = EventDrivenLayerSim(nc_count=2, chunk_bits=16)
        model = SparseCoreModel(nc_count=2, chunk_bits=16)
        op = sim.run_conv(spikes, weight)
        an = model.conv_timestep_cycles(spikes, (3, 8, 8), 6, 3)
        assert op.compression_cycles == an.compression_cycles
        assert op.accumulation_cycles == an.accumulation_cycles

    def test_fc_cycles_match_analytic(self, rng):
        spikes = (rng.random(40) < 0.25).astype(np.float32)
        weight = rng.normal(size=(12, 40)).astype(np.float32)
        sim = EventDrivenLayerSim(nc_count=3, chunk_bits=8)
        model = SparseCoreModel(nc_count=3, chunk_bits=8)
        op = sim.run_fc(spikes, weight)
        an = model.fc_timestep_cycles(spikes, 40, 12)
        assert op.compression_cycles == an.compression_cycles
        assert op.accumulation_cycles == an.accumulation_cycles


class TestFc:
    def test_matches_matmul(self, rng):
        spikes = (rng.random(20) < 0.4).astype(np.float32)
        weight = rng.normal(size=(7, 20)).astype(np.float32)
        result = EventDrivenLayerSim().run_fc(spikes, weight)
        np.testing.assert_allclose(
            result.membrane.reshape(-1), weight @ spikes, atol=1e-5
        )

    def test_size_mismatch(self, rng):
        with pytest.raises(HardwareModelError):
            EventDrivenLayerSim().run_fc(
                np.zeros(5), rng.normal(size=(3, 6)).astype(np.float32)
            )


class TestValidation:
    def test_rejects_bad_nc(self):
        with pytest.raises(HardwareModelError):
            EventDrivenLayerSim(nc_count=0)

    def test_rejects_rank_mismatch(self, rng):
        with pytest.raises(HardwareModelError):
            EventDrivenLayerSim().run_conv(
                np.zeros((4, 4)), rng.normal(size=(2, 1, 3, 3)).astype(np.float32)
            )

    def test_rejects_channel_mismatch(self, rng):
        with pytest.raises(HardwareModelError):
            EventDrivenLayerSim().run_conv(
                np.zeros((2, 4, 4)),
                rng.normal(size=(2, 3, 3, 3)).astype(np.float32),
            )
