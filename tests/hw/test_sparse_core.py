"""Sparse core cycle model tests (Eq. 3 semantics)."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw.sparse_core import SparseCoreModel


class TestConvTiming:
    def test_accumulation_follows_eq3(self, rng):
        spikes = (rng.random((4, 8, 8)) < 0.2).astype(np.float32)
        model = SparseCoreModel(nc_count=1)
        timing = model.conv_timestep_cycles(spikes, (4, 8, 8), 16, 3)
        events = int(spikes.sum())
        assert timing.accumulation_cycles == events * 9 * 16

    def test_nc_parallelism_divides_accumulation(self, rng):
        spikes = (rng.random((4, 8, 8)) < 0.2).astype(np.float32)
        one = SparseCoreModel(1).conv_timestep_cycles(spikes, (4, 8, 8), 16, 3)
        four = SparseCoreModel(4).conv_timestep_cycles(spikes, (4, 8, 8), 16, 3)
        assert four.accumulation_cycles == one.accumulation_cycles // 4

    def test_empty_input_only_scan_and_activation(self):
        spikes = np.zeros((2, 4, 4), dtype=np.float32)
        model = SparseCoreModel(nc_count=2, chunk_bits=8)
        timing = model.conv_timestep_cycles(spikes, (2, 4, 4), 4, 3)
        assert timing.input_events == 0
        assert timing.accumulation_cycles == 0
        assert timing.compression_cycles == 4  # 2 maps x 2 chunks
        assert timing.total_cycles == timing.compression_cycles + timing.activation_cycles

    def test_activation_cycles(self):
        spikes = np.zeros((2, 4, 4), dtype=np.float32)
        timing = SparseCoreModel(2).conv_timestep_cycles(spikes, (2, 4, 4), 6, 3)
        # 4*4 pixels x ceil(6/2)=3 owned channels.
        assert timing.activation_cycles == 48

    def test_analytic_mode_close_to_exact(self, rng):
        spikes = (rng.random((8, 16, 16)) < 0.15).astype(np.float32)
        model = SparseCoreModel(nc_count=4)
        exact = model.conv_timestep_cycles(spikes, (8, 16, 16), 32, 3)
        analytic = model.conv_timestep_cycles(
            None, (8, 16, 16), 32, 3, spike_count=float(spikes.sum())
        )
        assert analytic.accumulation_cycles == exact.accumulation_cycles
        assert analytic.compression_cycles == pytest.approx(
            exact.compression_cycles, rel=0.15
        )

    def test_analytic_requires_count(self):
        with pytest.raises(HardwareModelError):
            SparseCoreModel(1).conv_timestep_cycles(None, (2, 4, 4), 4, 3)

    def test_shape_mismatch(self, rng):
        spikes = np.zeros((3, 4, 4), dtype=np.float32)
        with pytest.raises(HardwareModelError):
            SparseCoreModel(1).conv_timestep_cycles(spikes, (2, 4, 4), 4, 3)

    def test_bottleneck_label(self, rng):
        dense_spikes = np.ones((2, 8, 8), dtype=np.float32)
        timing = SparseCoreModel(1).conv_timestep_cycles(
            dense_spikes, (2, 8, 8), 32, 3
        )
        assert timing.bottleneck == "accumulation"
        empty = np.zeros((2, 8, 8), dtype=np.float32)
        timing2 = SparseCoreModel(64).conv_timestep_cycles(
            empty, (2, 8, 8), 4, 3
        )
        assert timing2.bottleneck == "compression"


class TestFcTiming:
    def test_accumulation_follows_eq3(self, rng):
        spikes = (rng.random(64) < 0.3).astype(np.float32)
        timing = SparseCoreModel(1).fc_timestep_cycles(spikes, 64, 100)
        assert timing.accumulation_cycles == int(spikes.sum()) * 100

    def test_nc_unroll(self, rng):
        spikes = (rng.random(64) < 0.3).astype(np.float32)
        one = SparseCoreModel(1).fc_timestep_cycles(spikes, 64, 100)
        ten = SparseCoreModel(10).fc_timestep_cycles(spikes, 64, 100)
        assert ten.accumulation_cycles == one.accumulation_cycles // 10

    def test_size_mismatch(self):
        with pytest.raises(HardwareModelError):
            SparseCoreModel(1).fc_timestep_cycles(np.zeros(10), 12, 5)

    def test_analytic_mode(self):
        timing = SparseCoreModel(2).fc_timestep_cycles(
            None, 128, 64, spike_count=20.0
        )
        assert timing.accumulation_cycles == 20 * 32


class TestMerge:
    def test_merge_sums(self, rng):
        spikes = (rng.random((2, 4, 4)) < 0.3).astype(np.float32)
        model = SparseCoreModel(1)
        t1 = model.conv_timestep_cycles(spikes, (2, 4, 4), 4, 3)
        merged = SparseCoreModel.merge([t1, t1])
        assert merged.total_cycles == 2 * t1.total_cycles
        assert merged.input_events == 2 * t1.input_events

    def test_merge_empty_rejected(self):
        with pytest.raises(HardwareModelError):
            SparseCoreModel.merge([])


class TestValidation:
    def test_rejects_bad_nc(self):
        with pytest.raises(HardwareModelError):
            SparseCoreModel(0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(HardwareModelError):
            SparseCoreModel(1, chunk_bits=0)
