"""Accelerator configuration tests."""

import pytest

from repro.errors import ConfigError
from repro.hw.config import (
    AcceleratorConfig,
    PAPER_LW_ALLOCATIONS,
    PAPER_TABLE1_ALLOCATION,
    PAPER_TABLE1_OVERHEADS,
    lw_config,
    perf_config,
)
from repro.quant.schemes import INT4


class TestPaperConstants:
    def test_lw_tuples_have_nine_layers(self):
        for allocation in PAPER_LW_ALLOCATIONS.values():
            assert len(allocation) == 9

    def test_lw_dense_rows_are_one(self):
        for allocation in PAPER_LW_ALLOCATIONS.values():
            assert allocation[0] == 1

    def test_table1_allocation_matches_paper(self):
        assert PAPER_TABLE1_ALLOCATION == (1, 28, 12, 54, 16, 72, 70, 19, 4)

    def test_overheads_sum_to_about_100(self):
        assert sum(PAPER_TABLE1_OVERHEADS) == pytest.approx(100.0, abs=1.0)


class TestAcceleratorConfig:
    def test_defaults(self):
        config = AcceleratorConfig(name="x", allocation=(1, 2, 3))
        assert config.clock_hz == 100e6
        assert config.dense_pe_columns == 27
        assert config.dense_rows == 1
        assert config.sparse_ncs == (2, 3)
        assert config.total_ncs == 5

    def test_scaled(self):
        config = AcceleratorConfig(name="lw", allocation=(1, 2, 3))
        perf2 = config.scaled(2)
        assert perf2.allocation == (2, 4, 6)
        assert perf2.name == "lwx2"

    def test_scaled_rejects_zero(self):
        config = AcceleratorConfig(name="x", allocation=(1, 2))
        with pytest.raises(ConfigError):
            config.scaled(0)

    def test_with_scheme(self):
        config = AcceleratorConfig(name="x", allocation=(1, 2))
        assert config.with_scheme(INT4).scheme.name == "int4"

    def test_layer_cores_bounds(self):
        config = AcceleratorConfig(name="x", allocation=(1, 2))
        assert config.layer_cores(1) == 2
        with pytest.raises(ConfigError):
            config.layer_cores(5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"allocation": (1,)},
            {"allocation": (1, 0)},
            {"allocation": (1, 2), "clock_hz": 0.0},
            {"allocation": (1, 2), "compression_chunk_bits": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            AcceleratorConfig(name="bad", **kwargs)


class TestFactories:
    def test_lw_config_uses_paper_tuple(self):
        config = lw_config("cifar10", scheme=INT4)
        assert config.allocation == PAPER_LW_ALLOCATIONS["cifar10"]
        assert config.name == "lw"

    def test_lw_unknown_dataset(self):
        with pytest.raises(ConfigError, match="no published LW allocation"):
            lw_config("mnist")

    def test_lw_custom_allocation(self):
        config = lw_config("mnist", allocation=(1, 2, 3))
        assert config.allocation == (1, 2, 3)

    def test_perf_scales(self):
        lw = lw_config("svhn")
        perf4 = perf_config("svhn", 4)
        assert perf4.allocation == tuple(4 * v for v in lw.allocation)
        assert perf4.name == "perf4"
