"""Off-chip weight-streaming model tests (the paper's future-work item)."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.offchip import (
    DdrConfig,
    apply_streaming_to_cycles,
    bandwidth_bound_layers,
    plan_streaming,
)
from repro.quant.schemes import FP32, INT4


class TestDdrConfig:
    def test_bytes_per_cycle(self):
        ddr = DdrConfig(peak_bandwidth_gbps=10.0, efficiency=0.5)
        assert ddr.bytes_per_cycle(100e6) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            DdrConfig(peak_bandwidth_gbps=0.0)
        with pytest.raises(HardwareModelError):
            DdrConfig(efficiency=0.0)
        with pytest.raises(HardwareModelError):
            DdrConfig(efficiency=1.5)


class TestPlanStreaming:
    def test_everything_resident_with_big_budget(self, tiny_deployable):
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=1e12
        )
        assert report.streamed_layers == []
        assert report.total_streamed_mbytes == 0.0

    def test_everything_streams_with_zero_budget(self, tiny_deployable):
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=0.0
        )
        assert report.resident_layers == []
        assert all(p.stream_cycles_per_image > 0 for p in report.plans)

    def test_greedy_keeps_early_layers(self, tiny_deployable):
        first_bits = (
            tiny_deployable.layers[0].weight_count
            + tiny_deployable.layers[0].bias_q.size
        ) * 32
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=first_bits + 1
        )
        assert report.plans[0].resident
        assert not report.plans[-1].resident

    def test_int4_streams_less_than_fp32(self, tiny_deployable_int4, tiny_deployable):
        fp32 = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=0.0
        )
        int4 = plan_streaming(
            tiny_deployable_int4, INT4, 100e6, onchip_budget_bits=0.0
        )
        assert int4.total_streamed_mbytes < fp32.total_streamed_mbytes / 4

    def test_default_budget_from_device(self, tiny_deployable):
        report = plan_streaming(tiny_deployable, FP32, 100e6)
        assert report.onchip_budget_bits > 0

    def test_stream_cycles_scale_with_bits(self, tiny_deployable):
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=0.0
        )
        plans = sorted(report.plans, key=lambda p: p.weight_bits)
        cycles = [p.stream_cycles_per_image for p in plans]
        assert cycles == sorted(cycles)


class TestCycleMerging:
    def test_resident_layers_unchanged(self, tiny_deployable):
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=1e12
        )
        cycles = {"conv1_1": 100.0, "conv2_1": 200.0, "fc1": 50.0}
        merged = apply_streaming_to_cycles(cycles, report)
        assert merged == cycles

    def test_streamed_layer_takes_max(self, tiny_deployable):
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=0.0
        )
        cycles = {p.name: 1.0 for p in report.plans}
        merged = apply_streaming_to_cycles(cycles, report)
        for plan in report.plans:
            assert merged[plan.name] == pytest.approx(
                max(1.0, plan.stream_cycles_per_image)
            )

    def test_bandwidth_bound_detection(self, tiny_deployable):
        report = plan_streaming(
            tiny_deployable, FP32, 100e6, onchip_budget_bits=0.0
        )
        tiny_compute = {p.name: 1e-9 for p in report.plans}
        assert set(bandwidth_bound_layers(tiny_compute, report)) == set(
            p.name for p in report.plans
        )
        huge_compute = {p.name: 1e12 for p in report.plans}
        assert bandwidth_bound_layers(huge_compute, report) == []
