"""Energy report tests."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.energy import build_energy_report


def _report():
    return build_energy_report(
        names=["a", "b", "c"],
        cycles=[1000.0, 4000.0, 500.0],
        dynamic_power_w=[0.1, 0.2, 0.05],
        clock_hz=100e6,
        static_power_w=3.0,
    )


class TestEnergyReport:
    def test_latency_is_sum(self):
        report = _report()
        assert report.latency_ms == pytest.approx(5500 / 100e6 * 1e3)

    def test_throughput_set_by_bottleneck(self):
        report = _report()
        assert report.bottleneck_cycles == 4000
        assert report.throughput_fps == pytest.approx(100e6 / 4000)

    def test_energy_sums_power_times_time(self):
        report = _report()
        expected = (
            0.1 * 1000 / 100e6 + 0.2 * 4000 / 100e6 + 0.05 * 500 / 100e6
        ) * 1e3
        assert report.total_energy_mj == pytest.approx(expected)

    def test_layer_overheads_sum_to_100(self):
        report = _report()
        overheads = report.layer_overheads()
        assert sum(overheads.values()) == pytest.approx(100.0)
        assert overheads["b"] > overheads["a"] > overheads["c"]

    def test_static_energy(self):
        report = _report()
        assert report.static_energy_mj == pytest.approx(
            3.0 * report.latency_ms
        )

    def test_by_name(self):
        assert set(_report().by_name()) == {"a", "b", "c"}

    def test_validates_lengths(self):
        with pytest.raises(HardwareModelError):
            build_energy_report(["a"], [1.0, 2.0], [0.1], 1e6, 3.0)

    def test_validates_clock(self):
        with pytest.raises(HardwareModelError):
            build_energy_report(["a"], [1.0], [0.1], 0.0, 3.0)

    def test_zero_time_overheads_raise(self):
        report = build_energy_report(["a"], [0.0], [0.1], 1e6, 3.0)
        with pytest.raises(HardwareModelError):
            report.layer_overheads()
