"""FPGA device envelope tests."""

import pytest

from repro.errors import CapacityError
from repro.hw.device import XCVU13P, ZCU102, FpgaDevice


class TestXCVU13P:
    def test_published_capacities(self):
        assert XCVU13P.luts == 1_728_000
        assert XCVU13P.bram36 == 2_688
        assert XCVU13P.uram == 1_280

    def test_table1_int4_design_fits(self):
        # The paper's int4 totals must fit its own device.
        XCVU13P.check_fit(luts=109_700, ffs=37_600, bram=979, uram=0)

    def test_table1_fp32_design_fits(self):
        XCVU13P.check_fit(luts=821_600, ffs=58_700, bram=2_466, uram=836)

    def test_overflow_raises(self):
        with pytest.raises(CapacityError, match="LUT"):
            XCVU13P.check_fit(luts=2e6, ffs=0, bram=0, uram=0)
        with pytest.raises(CapacityError, match="URAM"):
            XCVU13P.check_fit(luts=0, ffs=0, bram=0, uram=1_281)

    def test_utilization(self):
        util = XCVU13P.utilization(luts=172_800, ffs=0, bram=1_344, uram=0)
        assert util["lut"] == pytest.approx(0.10)
        assert util["bram"] == pytest.approx(0.50)


class TestZCU102:
    def test_smaller_than_vu13p(self):
        assert ZCU102.luts < XCVU13P.luts
        assert ZCU102.bram36 < XCVU13P.bram36

    def test_no_uram(self):
        assert ZCU102.uram == 0
        util = ZCU102.utilization(luts=0, ffs=0, bram=0, uram=0)
        assert util["uram"] == 0.0

    def test_vu13p_fp32_design_does_not_fit_zcu102(self):
        with pytest.raises(CapacityError):
            ZCU102.check_fit(luts=821_600, ffs=58_700, bram=2_466, uram=836)


class TestCustomDevice:
    def test_multiple_overflows_reported(self):
        small = FpgaDevice(
            name="tiny", luts=10, ffs=10, bram36=1, uram=0, dsp=0
        )
        with pytest.raises(CapacityError) as excinfo:
            small.check_fit(luts=100, ffs=100, bram=5, uram=0)
        message = str(excinfo.value)
        assert "LUT" in message and "FF" in message and "BRAM" in message
