"""Reporting table / series / comparison tests."""

import pytest

from repro.errors import ReproError
from repro.reporting import ComparisonRow, PaperComparison, Series, Table
from repro.reporting.tables import render_figure


class TestTable:
    def test_add_row_and_render(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "| a" in text
        assert "2.5" in text
        assert "### t" in text

    def test_row_length_validated(self):
        table = Table(title="t", columns=["a"])
        with pytest.raises(ReproError):
            table.add_row(1, 2)

    def test_column_access(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("b") == [10, 20]

    def test_column_unknown(self):
        with pytest.raises(ReproError):
            Table(title="t", columns=["a"]).column("z")

    def test_none_renders_as_dashes(self):
        table = Table(title="t", columns=["a"])
        table.add_row(None)
        assert "--" in table.render()

    def test_notes_rendered(self):
        table = Table(title="t", columns=["a"])
        table.add_row(1)
        table.add_note("caveat")
        assert "caveat" in table.render()

    def test_float_formatting(self):
        table = Table(title="t", columns=["a"])
        table.add_row(1234567.0)
        table.add_row(0.000123)
        text = table.render()
        assert "1.23e+06" in text
        assert "0.000123" in text


class TestSeries:
    def test_points_and_render(self):
        series = Series("s", "x", "y")
        series.add_point("lw", 1.5)
        series.add_point("perf2", 0.7)
        text = series.render()
        assert "lw" in text and "perf2" in text

    def test_as_table(self):
        series = Series("s", "config", "energy")
        series.add_point("a", 1.0)
        table = series.as_table()
        assert table.columns == ["config", "energy"]

    def test_render_figure(self):
        s1 = Series("one", "x", "y")
        s1.add_point(1, 1.0)
        text = render_figure("Figure 9", [s1])
        assert "## Figure 9" in text


class TestComparison:
    def test_ratio(self):
        row = ComparisonRow("m", paper_value=2.0, measured_value=3.0)
        assert row.ratio == 1.5

    def test_ratio_none_paper(self):
        assert ComparisonRow("m", None, 3.0).ratio is None
        assert ComparisonRow("m", 0.0, 3.0).ratio is None

    def test_direction_matches(self):
        a = ComparisonRow("a", paper_value=10.0, measured_value=5.0)
        b = ComparisonRow("b", paper_value=2.0, measured_value=1.0)
        assert a.direction_matches(b)  # a > b in both worlds

    def test_direction_mismatch(self):
        a = ComparisonRow("a", paper_value=10.0, measured_value=1.0)
        b = ComparisonRow("b", paper_value=2.0, measured_value=5.0)
        assert not a.direction_matches(b)

    def test_paper_comparison_table(self):
        comparison = PaperComparison(name="test")
        comparison.add("metric", 2.0, 4.0, unit="x")
        comparison.verdict = "holds"
        text = comparison.render()
        assert "metric [x]" in text
        assert "holds" in text
