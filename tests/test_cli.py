"""CLI tests (driving main() directly with argv lists)."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig1"])
        assert args.which == "fig1"

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig9"])

    def test_train_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "XCVU13P" in out
        assert "preset" in out

    def test_train_evaluate_simulate_partition(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        common = ["--scale", "tiny", "--workspace", workspace, "--quiet"]

        assert main(["train", "cifar10", "--scheme", "fp32", *common]) == 0
        out = capsys.readouterr().out
        assert "conv1_1" in out
        assert os.path.isdir(os.path.join(workspace, "models"))

        assert main(["evaluate", "cifar10", "--scheme", "fp32", *common]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

        assert main(["simulate", "cifar10", "--scheme", "fp32", *common]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

        assert main(
            ["partition", "cifar10", "--scheme", "fp32", "--budget", "24", *common]
        ) == 0
        out = capsys.readouterr().out
        assert "balanced" in out

    def test_serve_replays_load_and_reports(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        common = ["--scale", "tiny", "--workspace", workspace, "--quiet"]
        code = main(
            [
                "serve", "cifar10", "--scheme", "fp32",
                "--requests", "8", "--rate", "200",
                "--max-batch", "4", "--timeout-ms", "0",
                *common,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "offered 8" in out
        assert "completed 8" in out
        assert "p99" in out
        assert "drained cleanly" in out

    def test_serve_closed_loop(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        code = main(
            [
                "serve", "cifar10", "--scheme", "fp32",
                "--mode", "closed", "--clients", "2", "--requests", "6",
                "--timeout-ms", "0",
                "--scale", "tiny", "--workspace", workspace, "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "closed loop" in out
        assert "completed 6" in out

    def test_serve_parser_knobs(self):
        args = build_parser().parse_args(
            ["serve", "svhn", "--max-batch", "2", "--queue-depth", "8"]
        )
        assert args.command == "serve"
        assert args.max_batch == 2
        assert args.queue_depth == 8
        assert args.mode == "open"

    def test_experiment_single(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        code = main(
            [
                "experiment", "table1",
                "--scale", "tiny", "--workspace", workspace, "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
