"""Cross-module integration tests: the full train -> quantize -> deploy ->
simulate pipeline, and golden-model agreements between subsystems."""

import numpy as np
import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.event_sim import EventDrivenLayerSim
from repro.hw.simulator import HybridSimulator
from repro.quant import FP32, INT4, convert, prepare_qat
from repro.snn import Trainer, TrainingConfig, build_network
from repro.snn.encoding import RateEncoder
from repro.tensor import no_grad


class TestFullPipeline:
    def test_train_quantize_deploy_simulate(self, tiny_dataset):
        """The complete paper workflow at tiny scale."""
        train, test = tiny_dataset
        net = build_network("8C3-MP2-16C3-MP2-40", (3, 8, 8), 10, seed=0)
        prepare_qat(net, INT4)
        config = TrainingConfig(epochs=2, lr=3e-3, seed=0)
        Trainer(net, config).fit(train.images, train.labels)
        net.eval()
        deployable = convert(net, INT4)
        hw = AcceleratorConfig(name="e2e", allocation=(1, 2, 2), scheme=INT4)
        report = HybridSimulator(deployable, hw).run(
            test.images[:16], 2, labels=test.labels[:16]
        )
        assert report.accuracy is not None
        assert report.energy_mj > 0
        assert report.throughput_fps > 0

    def test_deployable_matches_network_spike_for_spike(
        self, tiny_trained_network, tiny_deployable, tiny_dataset
    ):
        _, test = tiny_dataset
        images = test.images[:8]
        with no_grad():
            net_out = tiny_trained_network.forward(images, 3, record=True)
        dep_out = tiny_deployable.forward(images, 3, record=True)
        for layer in ("conv1_1", "conv2_1", "fc1"):
            for t in range(3):
                np.testing.assert_array_equal(
                    net_out.spike_trains[layer][t].reshape(8, -1),
                    dep_out.spike_trains[layer][t].reshape(8, -1),
                    err_msg=f"{layer} t={t}",
                )


class TestEventSimAgainstDeployable:
    def test_event_sim_reproduces_deployable_layer(
        self, tiny_deployable, tiny_dataset
    ):
        """Replaying a recorded spike train through the event-driven
        golden sim reproduces the deployable's membrane current."""
        _, test = tiny_dataset
        out = tiny_deployable.forward(test.images[:2], 1, record=True)
        layer = tiny_deployable.layers[1]  # conv2_1 (sparse)
        train = out.spike_trains[layer.name][0][0]  # sample 0, t=0
        sim = EventDrivenLayerSim(nc_count=1, chunk_bits=32)
        result = sim.run_conv(train, layer.effective_weight(), padding=1)
        expected = tiny_deployable._layer_current(layer, train[None])[0]
        bias = layer.effective_bias().reshape(-1, 1, 1)
        np.testing.assert_allclose(
            result.membrane + bias, expected, atol=1e-3
        )


class TestCodingComparison:
    def test_direct_vs_rate_spike_structure(self, tiny_deployable, tiny_dataset):
        """Rate coding at high T produces more input events than direct
        coding's replayed analog frame feeds forward -- Table II's spike
        gap mechanism."""
        _, test = tiny_dataset
        images = test.images[:16]
        direct = tiny_deployable.forward(images, 2)
        rate = tiny_deployable.forward(images, 12, RateEncoder(seed=0))
        assert rate.stats.spikes_per_image() > direct.stats.spikes_per_image()

    def test_rate_coded_simulation_dense_off(self, tiny_deployable, tiny_dataset):
        _, test = tiny_dataset
        config = AcceleratorConfig(
            name="rate",
            allocation=(1, 2, 2),
            scheme=FP32,
            use_dense_core=False,
        )
        report = HybridSimulator(tiny_deployable, config).run(
            test.images[:8], 6, RateEncoder(seed=1)
        )
        assert all(layer.engine == "sparse" for layer in report.layers)


class TestQuantizationSparsityMechanism:
    def test_int4_conversion_preserves_most_predictions(
        self, tiny_deployable, tiny_deployable_int4, tiny_dataset
    ):
        _, test = tiny_dataset
        fp32_pred = tiny_deployable.predict(test.images, 2)
        int4_pred = tiny_deployable_int4.predict(test.images, 2)
        agreement = (fp32_pred == int4_pred).mean()
        # The tiny fixture net is barely trained, so post-training int4
        # (no QAT) perturbs its noisy decision boundary substantially;
        # the invariant is agreement well above the 10% chance floor.
        # QAT-level accuracy parity is exercised by the Fig. 1 bench.
        assert agreement > 0.15

    def test_quantized_weights_sparser(self, tiny_deployable, tiny_deployable_int4):
        for fp32_layer, int4_layer in zip(
            tiny_deployable.layers, tiny_deployable_int4.layers
        ):
            assert (
                int4_layer.zero_weight_fraction
                >= fp32_layer.zero_weight_fraction
            )
