"""The registry as single source of truth, and the shipped tree's own
cleanliness under the linter -- the repo eats its own dog food."""

from __future__ import annotations

import os

from repro.analysis import lint_paths
from repro.analysis.baseline import load_baseline, partition_baseline
from repro.analysis import registry

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestRegistry:
    def test_every_family_prefix_prefixes_a_variable(self):
        names = registry.registered_env_names()
        for prefix in registry.FAMILY_PREFIXES:
            assert any(name.startswith(prefix) for name in names), prefix

    def test_prefix_token_matching(self):
        assert registry.is_registered_env_token("REPRO_WORKERS")
        assert registry.is_registered_env_token("REPRO_RETRY_")
        assert not registry.is_registered_env_token("REPRO_BOGUS")
        # A trailing-underscore token only matches a registered family.
        assert not registry.is_registered_env_token("REPRO_BOGUS_")

    def test_registry_matches_source_tree_exactly(self):
        unregistered, stale = registry.verify_against_tree(REPO_ROOT)
        assert unregistered == set()
        assert stale == set()

    def test_registry_matches_argument_parser(self):
        import argparse

        from repro.cli import build_parser

        def walk(parser):
            for action in parser._actions:
                for option in action.option_strings:
                    if option.startswith("--") and option != "--help":
                        yield option
                if isinstance(action, argparse._SubParsersAction):
                    for sub in action.choices.values():
                        yield from walk(sub)

        assert set(walk(build_parser())) == registry.registered_flag_names()

    def test_documented_tokens_all_in_configuration_md(self):
        doc = open(
            os.path.join(REPO_ROOT, "docs", "CONFIGURATION.md"),
            encoding="utf-8",
        ).read()
        for token in registry.documented_tokens():
            probe = token + "*" if token.endswith("_") else token
            assert probe in doc, token


class TestShippedTree:
    def test_src_lints_clean_against_checked_in_baseline(self):
        result = lint_paths(["src"], root=REPO_ROOT)
        baseline = load_baseline(
            os.path.join(REPO_ROOT, "lint-baseline.json")
        )
        fresh, _grandfathered = partition_baseline(result.findings, baseline)
        assert fresh == [], "\n".join(f.render() for f in fresh)

    def test_worker_reachability_covers_the_real_pool_modules(self):
        result = lint_paths(["src"], root=REPO_ROOT)
        for module in (
            "repro.parallel.pool",
            "repro.parallel.shard",
            "repro.runtime.kernels",
        ):
            assert module in result.worker_reachable, module

    def test_baseline_entries_still_correspond_to_findings(self):
        # Every checked-in baseline entry must still be consumed by a
        # real finding -- otherwise the entry is stale and should go.
        result = lint_paths(["src"], root=REPO_ROOT)
        baseline = load_baseline(
            os.path.join(REPO_ROOT, "lint-baseline.json")
        )
        _fresh, grandfathered = partition_baseline(result.findings, baseline)
        assert len(grandfathered) == sum(baseline.values())
