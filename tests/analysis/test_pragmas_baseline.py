"""Suppression mechanics: per-line pragmas and the checked-in baseline."""

from __future__ import annotations

import json

import pytest

from repro.analysis import lint_sources
from repro.analysis.baseline import (
    load_baseline,
    partition_baseline,
    save_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.pragmas import (
    collect_pragmas,
    pragma_rules,
    unjustified_pragma_lines,
)
from repro.errors import ReproError, StaticAnalysisError


class TestPragmaParsing:
    def test_single_rule(self):
        assert pragma_rules("x = 1  # repro: lint-ok[D101] seeded") == {"D101"}

    def test_multiple_rules(self):
        line = "x = 1  # repro: lint-ok[D101, P102] shared fixture"
        assert pragma_rules(line) == {"D101", "P102"}

    def test_blanket_pragma_is_not_honoured(self):
        # No rule list -> no suppression: a pragma can never swallow an
        # unanticipated class of violation.
        assert pragma_rules("x = 1  # repro: lint-ok") == set()
        assert pragma_rules("x = 1  # repro: lint-ok[]") == set()

    def test_collect_is_line_keyed(self):
        lines = [
            "a = 1",
            "b = 2  # repro: lint-ok[E101] contained",
            "c = 3",
        ]
        assert collect_pragmas(lines) == {2: {"E101"}}

    def test_unjustified_detection(self):
        lines = [
            "a = 1  # repro: lint-ok[D101]",
            "b = 2  # repro: lint-ok[D101] because seeded",
        ]
        assert unjustified_pragma_lines(lines) == [1]


class TestPragmaSuppression:
    SOURCE = (
        "import numpy as np\n"
        "rng = np.random.default_rng(0)  # repro: lint-ok[D101] fixture\n"
    )

    def test_matching_rule_suppresses_and_counts(self):
        result = lint_sources({"src/repro/thing.py": self.SOURCE})
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_rule_does_not_suppress(self):
        source = self.SOURCE.replace("[D101]", "[D102]")
        result = lint_sources({"src/repro/thing.py": source})
        assert [f.rule for f in result.findings] == ["D101"]

    def test_pragma_only_covers_its_own_line(self):
        source = (
            "import numpy as np\n"
            "a = np.random.default_rng(0)  # repro: lint-ok[D101] fixture\n"
            "b = np.random.default_rng(1)\n"
        )
        result = lint_sources({"src/repro/thing.py": source})
        assert [f.line for f in result.findings] == [3]
        assert result.suppressed == 1


def _finding(rule="D102", path="src/repro/snn/training.py", line=10,
             snippet="start = time.perf_counter()"):
    return Finding(rule=rule, path=path, line=line,
                   message="wall-clock read", snippet=snippet)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        count = save_baseline(path, [_finding(), _finding(line=20,
                                               snippet="end = now()")])
        assert count == 2
        baseline = load_baseline(path)
        assert sum(baseline.values()) == 2

    def test_line_shift_stays_baselined(self, tmp_path):
        # Matching is (rule, path, snippet) -- unrelated edits that move
        # the offending line do not un-baseline it.
        path = str(tmp_path / "baseline.json")
        save_baseline(path, [_finding(line=10)])
        fresh, grandfathered = partition_baseline(
            [_finding(line=55)], load_baseline(path)
        )
        assert fresh == []
        assert len(grandfathered) == 1

    def test_changed_snippet_revokes_exemption(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, [_finding()])
        fresh, grandfathered = partition_baseline(
            [_finding(snippet="start = time.time()")], load_baseline(path)
        )
        assert len(fresh) == 1
        assert grandfathered == []

    def test_multiset_semantics(self, tmp_path):
        # Two identical findings against one baseline entry: exactly one
        # is absorbed, the duplicate stays fresh.
        path = str(tmp_path / "baseline.json")
        save_baseline(path, [_finding()])
        fresh, grandfathered = partition_baseline(
            [_finding(line=10), _finding(line=30)], load_baseline(path)
        )
        assert len(fresh) == 1
        assert len(grandfathered) == 1

    def test_corrupt_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StaticAnalysisError):
            load_baseline(str(path))

    def test_foreign_format_raises_typed_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "something-else",
                                    "entries": []}), encoding="utf-8")
        with pytest.raises(StaticAnalysisError):
            load_baseline(str(path))

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(StaticAnalysisError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_static_analysis_error_is_a_repro_error(self):
        assert issubclass(StaticAnalysisError, ReproError)
