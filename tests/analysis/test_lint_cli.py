"""The lint CLI surfaces: ``repro lint`` (the ``snn-hybrid`` subcommand),
``python -m repro.analysis``, and the ``scripts/check_static.py`` gate --
including the gate's guarantee to fail non-zero on a seeded violation."""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")


def run_cli(args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


class TestLintCli:
    def test_module_entry_point_clean_tree(self):
        proc = run_cli(["-m", "repro.analysis", "src"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_repro_cli_subcommand_matches(self):
        proc = run_cli(["-m", "repro.cli", "lint", "src"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_list_rules(self):
        proc = run_cli(["-m", "repro.analysis", "--list-rules"])
        assert proc.returncode == 0
        for rule_id in ("D101", "D102", "P101", "P102", "E101", "E102",
                        "R101", "R102", "R103", "X100", "X101"):
            assert rule_id in proc.stdout, rule_id

    def test_json_format(self):
        proc = run_cli(["-m", "repro.analysis", "src", "--format", "json"])
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["files_scanned"] > 50
        assert payload["suppressed"] > 0
        assert payload["baselined"] == 2

    def test_unknown_rule_select_is_a_usage_error(self):
        proc = run_cli(["-m", "repro.analysis", "src", "--select", "Z999"])
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_missing_path_is_a_usage_error(self):
        proc = run_cli(["-m", "repro.analysis", "no/such/dir"])
        assert proc.returncode == 2

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "src"
        bad.mkdir()
        (bad / "thing.py").write_text(
            "import random\n", encoding="utf-8"
        )
        proc = run_cli(["-m", "repro.analysis", "src"], cwd=str(tmp_path))
        assert proc.returncode == 1
        assert "D101" in proc.stdout


def _seed_copy(tmp_path):
    """A copy of the shipped tree with one fresh D101 violation seeded
    into the runtime kernels."""
    root = tmp_path / "seeded"
    root.mkdir()
    shutil.copytree(SRC, root / "src")
    shutil.copy(
        os.path.join(REPO_ROOT, "lint-baseline.json"),
        root / "lint-baseline.json",
    )
    kernels = root / "src" / "repro" / "runtime" / "kernels.py"
    source = kernels.read_text(encoding="utf-8")
    source += (
        "\n\ndef _sneaky_noise(shape):\n"
        "    import numpy as np\n"
        "    return np.random.rand(*shape)\n"
    )
    kernels.write_text(source, encoding="utf-8")
    return str(root)


class TestCheckStaticGate:
    GATE = os.path.join(REPO_ROOT, "scripts", "check_static.py")

    def test_gate_passes_on_the_shipped_tree(self):
        proc = run_cli([self.GATE])
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_gate_fails_nonzero_on_seeded_violation(self, tmp_path):
        seeded = _seed_copy(tmp_path)
        proc = run_cli([self.GATE, "--root", seeded])
        assert proc.returncode != 0
        assert "D101" in proc.stdout
        assert "kernels.py" in proc.stdout

    def test_baseline_does_not_absorb_the_seeded_violation(self, tmp_path):
        # The seeded line is fresh: no baseline entry matches its
        # (rule, path, snippet) key, so the gate must fail even though a
        # baseline file is present and valid.
        seeded = _seed_copy(tmp_path)
        proc = run_cli(["-m", "repro.analysis", "src"], cwd=seeded)
        assert proc.returncode == 1
        assert "baselined" in proc.stdout
