"""Per-rule fixtures: each rule has at least one firing and one
non-firing case, exercised through the real :func:`lint_sources`
pipeline (the same code path ``repro lint`` runs on files)."""

from __future__ import annotations

from repro.analysis import lint_sources


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


def findings_for(result, rule):
    return [f for f in result.findings if f.rule == rule]


# --------------------------------------------------------------------
# D101 -- ambient RNG
# --------------------------------------------------------------------


class TestAmbientRng:
    def test_numpy_default_rng_fires(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "import numpy as np\n"
                "def f():\n"
                "    return np.random.default_rng(0).random()\n"
            ),
        }, select=["D101"])
        (finding,) = result.findings
        assert finding.rule == "D101"
        assert finding.line == 3
        assert "numpy.random.default_rng" in finding.message

    def test_stdlib_random_import_fires(self):
        result = lint_sources({
            "src/repro/thing.py": "import random\n",
        }, select=["D101"])
        assert rules_fired(result) == ["D101"]

    def test_from_numpy_random_import_fires(self):
        result = lint_sources({
            "src/repro/thing.py": "from numpy.random import default_rng\n",
        }, select=["D101"])
        assert rules_fired(result) == ["D101"]

    def test_blessed_rng_module_is_exempt(self):
        result = lint_sources({
            "src/repro/utils/rng.py": (
                "import numpy as np\n"
                "def new_rng(seed):\n"
                "    return np.random.default_rng(seed)\n"
            ),
        }, select=["D101"])
        assert result.findings == []

    def test_counter_stream_usage_is_clean(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "from repro.utils.rng import counter_uniforms, new_rng\n"
                "def f(seed, sample, t):\n"
                "    return counter_uniforms(seed, sample, t, n=4)\n"
            ),
        }, select=["D101"])
        assert result.findings == []

    def test_generator_type_annotation_is_clean(self):
        # np.random.Generator in an annotation is a type, not a draw.
        result = lint_sources({
            "src/repro/thing.py": (
                "import numpy as np\n"
                "def f(rng: np.random.Generator) -> float:\n"
                "    return float(rng.random())\n"
            ),
        }, select=["D101"])
        assert result.findings == []


# --------------------------------------------------------------------
# D102 -- wall-clock reads
# --------------------------------------------------------------------


class TestWallClock:
    def test_perf_counter_fires(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "import time\n"
                "def f():\n"
                "    return time.perf_counter()\n"
            ),
        }, select=["D102"])
        (finding,) = result.findings
        assert finding.rule == "D102"
        assert finding.line == 3

    def test_from_time_import_fires(self):
        result = lint_sources({
            "src/repro/thing.py": "from time import perf_counter\n",
        }, select=["D102"])
        assert rules_fired(result) == ["D102"]

    def test_datetime_now_fires(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "import datetime\n"
                "stamp = datetime.datetime.now()\n"
            ),
        }, select=["D102"])
        assert rules_fired(result) == ["D102"]

    def test_monotonic_is_exempt(self):
        # Deadline arithmetic bounds when work stops, never what it
        # computes -- time.monotonic is exempt by design.
        result = lint_sources({
            "src/repro/thing.py": (
                "import time\n"
                "def wait(deadline):\n"
                "    return time.monotonic() < deadline\n"
            ),
        }, select=["D102"])
        assert result.findings == []

    def test_blessed_measurement_modules_are_exempt(self):
        source = "import time\nms = time.perf_counter()\n"
        for path in (
            "src/repro/utils/timing.py",
            "src/repro/runtime/costmodel.py",
        ):
            result = lint_sources({path: source}, select=["D102"])
            assert result.findings == [], path

    def test_time_sleep_is_clean(self):
        result = lint_sources({
            "src/repro/thing.py": "import time\ntime.sleep(0.1)\n",
        }, select=["D102"])
        assert result.findings == []


# --------------------------------------------------------------------
# P101 -- ambient environment reads
# --------------------------------------------------------------------


class TestAmbientEnv:
    def test_environ_get_fires(self):
        result = lint_sources({
            "src/repro/runtime/thing.py": (
                "import os\n"
                "value = os.environ.get('SOME_VAR', '1')\n"
            ),
        }, select=["P101"])
        (finding,) = result.findings
        assert finding.rule == "P101"

    def test_getenv_fires(self):
        result = lint_sources({
            "src/repro/runtime/thing.py": (
                "import os\nvalue = os.getenv('SOME_VAR')\n"
            ),
        }, select=["P101"])
        assert rules_fired(result) == ["P101"]

    def test_environ_subscript_read_fires(self):
        result = lint_sources({
            "src/repro/runtime/thing.py": (
                "import os\nvalue = os.environ['SOME_VAR']\n"
            ),
        }, select=["P101"])
        assert rules_fired(result) == ["P101"]

    def test_config_module_is_blessed(self):
        result = lint_sources({
            "src/repro/runtime/config.py": (
                "import os\nvalue = os.environ.get('SOME_VAR', '1')\n"
            ),
        }, select=["P101"])
        assert result.findings == []

    def test_environ_write_is_legal(self):
        # Writes are the documented parent-side scoping mechanism
        # (e.g. pinning REPRO_WORKERS=1 in worker bootstraps).
        result = lint_sources({
            "src/repro/parallel/thing.py": (
                "import os\nos.environ['SOME_VAR'] = '1'\n"
            ),
        }, select=["P101"])
        assert result.findings == []


# --------------------------------------------------------------------
# P102 -- mutable module state reachable from workers
# --------------------------------------------------------------------

_POOL = (
    "def run_tasks(cell, payloads):\n"
    "    return [cell(p) for p in payloads]\n"
)

_WORKER_WITH_CACHE = (
    "_CACHE = {}\n"
    "def _cell(payload):\n"
    "    _CACHE[payload] = payload\n"
    "    return payload\n"
)

_DRIVER = (
    "from repro.parallel.pool import run_tasks\n"
    "from repro.work import _cell\n"
    "def drive(items):\n"
    "    return run_tasks(_cell, items)\n"
)


class TestWorkerMutableState:
    def test_shipped_callable_module_fires(self):
        result = lint_sources({
            "src/repro/parallel/pool.py": _POOL,
            "src/repro/work.py": _WORKER_WITH_CACHE,
            "src/repro/driver.py": _DRIVER,
        }, select=["P102"])
        findings = findings_for(result, "P102")
        assert any(f.path == "src/repro/work.py" for f in findings)
        assert "repro.work" in result.worker_reachable

    def test_unreachable_module_is_clean(self):
        # Same mutable state, but nothing ships its callables to a pool.
        result = lint_sources({
            "src/repro/work.py": _WORKER_WITH_CACHE,
        }, select=["P102"])
        assert result.findings == []
        assert "repro.work" not in result.worker_reachable

    def test_executor_module_is_itself_a_root(self):
        result = lint_sources({
            "src/repro/parallel/pool.py": (
                "_STATE = {}\n" + _POOL +
                "def remember(key, value):\n"
                "    _STATE[key] = value\n"
            ),
        }, select=["P102"])
        assert rules_fired(result) == ["P102"]

    def test_initializer_kwarg_ships_too(self):
        result = lint_sources({
            "src/repro/parallel/pool.py": (
                "def run_tasks(cell, payloads, initializer=None):\n"
                "    return [cell(p) for p in payloads]\n"
            ),
            "src/repro/boot.py": (
                "_LOADED = {}\n"
                "def _init():\n"
                "    _LOADED['model'] = object()\n"
            ),
            "src/repro/driver.py": (
                "from repro.parallel.pool import run_tasks\n"
                "from repro.boot import _init\n"
                "def drive(cell, items):\n"
                "    return run_tasks(cell, items, initializer=_init)\n"
            ),
        }, select=["P102"])
        assert any(
            f.path == "src/repro/boot.py"
            for f in findings_for(result, "P102")
        )

    def test_import_closure_extends_reachability(self):
        # driver ships work._cell; work imports helper; helper's module
        # state is therefore worker-reachable too.
        result = lint_sources({
            "src/repro/parallel/pool.py": _POOL,
            "src/repro/helper.py": (
                "_MEMO = {}\n"
                "def lookup(key):\n"
                "    _MEMO[key] = True\n"
                "    return key\n"
            ),
            "src/repro/work.py": (
                "from repro.helper import lookup\n"
                "def _cell(payload):\n"
                "    return lookup(payload)\n"
            ),
            "src/repro/driver.py": _DRIVER,
        }, select=["P102"])
        assert any(
            f.path == "src/repro/helper.py"
            for f in findings_for(result, "P102")
        )

    def test_local_shadow_is_clean(self):
        # A function-local binding shadows the module name: mutating the
        # local is not module state.
        result = lint_sources({
            "src/repro/parallel/pool.py": _POOL + (
                "_CACHE = None\n"
                "def local_work():\n"
                "    _CACHE = {}\n"
                "    _CACHE['k'] = 1\n"
                "    return _CACHE\n"
            ),
        }, select=["P102"])
        assert result.findings == []

    def test_lock_binding_is_exempt(self):
        result = lint_sources({
            "src/repro/parallel/pool.py": _POOL + (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
                "def locked():\n"
                "    with _LOCK:\n"
                "        _LOCK.acquire\n"
            ),
        }, select=["P102"])
        assert result.findings == []

    def test_global_rebind_fires(self):
        result = lint_sources({
            "src/repro/parallel/pool.py": _POOL + (
                "_COUNTER = 0\n"
                "def bump():\n"
                "    global _COUNTER\n"
                "    _COUNTER += 1\n"
            ),
        }, select=["P102"])
        assert rules_fired(result) == ["P102"]


# --------------------------------------------------------------------
# E101 / E102 -- typed-error discipline
# --------------------------------------------------------------------


class TestTypedErrors:
    def test_bare_except_in_parallel_fires(self):
        result = lint_sources({
            "src/repro/parallel/thing.py": (
                "def f():\n"
                "    try:\n"
                "        work()\n"
                "    except Exception:\n"
                "        pass\n"
            ),
        }, select=["E101"])
        (finding,) = result.findings
        assert finding.rule == "E101"
        assert finding.line == 4

    def test_reraising_broad_except_is_clean(self):
        result = lint_sources({
            "src/repro/parallel/thing.py": (
                "def f():\n"
                "    try:\n"
                "        work()\n"
                "    except Exception:\n"
                "        cleanup()\n"
                "        raise\n"
            ),
        }, select=["E101"])
        assert result.findings == []

    def test_typed_except_is_clean(self):
        result = lint_sources({
            "src/repro/serving/thing.py": (
                "from repro.errors import ServingError\n"
                "def f():\n"
                "    try:\n"
                "        work()\n"
                "    except ServingError:\n"
                "        pass\n"
            ),
        }, select=["E101"])
        assert result.findings == []

    def test_outside_typed_dirs_is_out_of_scope(self):
        result = lint_sources({
            "src/repro/experiments/thing.py": (
                "def f():\n"
                "    try:\n"
                "        work()\n"
                "    except Exception:\n"
                "        pass\n"
            ),
        }, select=["E101"])
        assert result.findings == []

    def test_builtin_raise_in_faults_fires(self):
        result = lint_sources({
            "src/repro/faults/thing.py": (
                "def f(spec):\n"
                "    raise ValueError('bad spec ' + spec)\n"
            ),
        }, select=["E102"])
        (finding,) = result.findings
        assert finding.rule == "E102"
        assert "ValueError" in finding.message

    def test_repro_error_raise_is_clean(self):
        result = lint_sources({
            "src/repro/faults/thing.py": (
                "from repro.errors import FaultPlanError\n"
                "def f(spec):\n"
                "    raise FaultPlanError('bad spec ' + spec)\n"
            ),
        }, select=["E102"])
        assert result.findings == []


# --------------------------------------------------------------------
# R101 / R102 / R103 -- registry drift
# --------------------------------------------------------------------


class TestRegistryDrift:
    def test_unregistered_env_token_fires(self):
        result = lint_sources({
            "src/repro/thing.py": "# reads REPRO_TOTALLY_BOGUS at startup\n",
        }, select=["R101"])
        (finding,) = result.findings
        assert finding.rule == "R101"
        assert "REPRO_TOTALLY_BOGUS" in finding.message

    def test_registered_env_token_is_clean(self):
        result = lint_sources({
            "src/repro/thing.py": "# honours REPRO_WORKERS like the rest\n",
        }, select=["R101"])
        assert result.findings == []

    def test_family_prefix_token_is_clean(self):
        result = lint_sources({
            "src/repro/thing.py": "# the REPRO_RETRY_* family\n",
        }, select=["R101"])
        assert result.findings == []

    def test_unregistered_flag_fires(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "def build(parser):\n"
                "    parser.add_argument('--totally-bogus-flag')\n"
            ),
        }, select=["R102"])
        (finding,) = result.findings
        assert finding.rule == "R102"

    def test_registered_flag_is_clean(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "def build(parser):\n"
                "    parser.add_argument('--workers', type=int)\n"
            ),
        }, select=["R102"])
        assert result.findings == []

    def test_stale_registry_fires_when_registry_in_scope(self):
        # The registry module is scanned, but the scanned tree mentions
        # none of the registered variables -> every entry is stale.
        result = lint_sources({
            "src/repro/analysis/registry.py": "REGISTRY = 'placeholder'\n",
            "src/repro/thing.py": "x = 1\n",
        }, select=["R103"])
        stale = findings_for(result, "R103")
        assert stale
        assert all(f.path == "src/repro/analysis/registry.py" for f in stale)
        assert any("REPRO_WORKERS" in f.message for f in stale)

    def test_no_registry_in_scope_no_stale_pass(self):
        result = lint_sources({
            "src/repro/thing.py": "x = 1\n",
        }, select=["R103"])
        assert result.findings == []


# --------------------------------------------------------------------
# X100 / X101 -- engine pseudo-rules
# --------------------------------------------------------------------


class TestEngineRules:
    def test_syntax_error_surfaces_as_x100(self):
        result = lint_sources({
            "src/repro/broken.py": "def f(:\n",
            "src/repro/fine.py": "x = 1\n",
        })
        (finding,) = result.findings
        assert finding.rule == "X100"
        assert finding.path == "src/repro/broken.py"
        # The parse failure never aborts the run for other files.
        assert result.files_scanned == 2

    def test_unjustified_pragma_is_x101(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "import time\n"
                "t = time.perf_counter()  # repro: lint-ok[D102]\n"
            ),
        })
        # The D102 finding is still suppressed, but the naked pragma is
        # itself reported.
        assert rules_fired(result) == ["X101"]
        assert result.suppressed == 1

    def test_justified_pragma_is_clean(self):
        result = lint_sources({
            "src/repro/thing.py": (
                "import time\n"
                "t = time.perf_counter()  # repro: lint-ok[D102] bench-only\n"
            ),
        })
        assert result.findings == []
        assert result.suppressed == 1
