"""The synthetic load generator: accounting, percentiles, overload."""

import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    InferenceServer,
    LoadReport,
    resolve_serve_config,
    run_closed_loop,
    run_open_loop,
)


class _Model:
    input_shape = (1, 2, 2)

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise AssertionError("tests inject executors; forward is unused")


IMAGES = np.zeros((6, 1, 2, 2), dtype=np.float32)


def _fast_executor(images, indices, timeout_s):
    return np.tile(
        np.asarray(indices, dtype=np.float32)[:, None], (1, 3)
    )


def _slow_executor(images, indices, timeout_s):
    time.sleep(0.08)
    return _fast_executor(images, indices, timeout_s)


def _server(executor, **knobs):
    knobs.setdefault("max_wait_ms", 2.0)
    knobs.setdefault("timeout_ms", 5000.0)
    server = InferenceServer(resolve_serve_config(**knobs))
    server.register("m", _Model(), timesteps=2, executor=executor)
    return server


def _assert_accounted(report):
    assert (
        report.completed + report.rejected + report.timed_out + report.failed
        == report.offered
    )
    assert report.accepted == report.offered - report.rejected


class TestOpenLoop:
    def test_healthy_load_all_completes(self):
        with _server(_fast_executor, max_batch=4, queue_depth=64) as server:
            report = run_open_loop(
                server, "m", IMAGES, rate_rps=300.0, count=30
            )
        _assert_accounted(report)
        assert report.completed == 30
        assert len(report.latencies_ms) == 30
        assert report.percentile_ms(50) <= report.percentile_ms(99)
        assert report.achieved_rps > 0

    def test_overload_sheds_and_accounts(self):
        """Past capacity the open loop must see rejections and/or
        timeouts -- and every offered request still lands in exactly
        one bucket."""
        with _server(
            _slow_executor,
            max_batch=1,
            max_wait_ms=0.0,
            queue_depth=2,
            timeout_ms=400.0,
        ) as server:
            report = run_open_loop(
                server, "m", IMAGES, rate_rps=200.0, count=30
            )
        _assert_accounted(report)
        assert report.rejected + report.timed_out > 0
        assert report.completed >= 1

    def test_report_dict_is_json_ready(self):
        import json

        with _server(_fast_executor, max_batch=2) as server:
            report = run_open_loop(
                server, "m", IMAGES, rate_rps=500.0, count=10
            )
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["offered"] == 10
        assert set(payload) >= {
            "accepted", "completed", "rejected", "timed_out",
            "p50_ms", "p99_ms", "achieved_rps",
        }

    def test_invalid_parameters_rejected(self):
        with _server(_fast_executor) as server:
            with pytest.raises(ServingError):
                run_open_loop(server, "m", IMAGES, rate_rps=0.0, count=5)
            with pytest.raises(ServingError):
                run_open_loop(server, "m", IMAGES, rate_rps=10.0, count=0)


class TestClosedLoop:
    def test_clients_complete_and_account(self):
        with _server(_fast_executor, max_batch=4, queue_depth=64) as server:
            report = run_closed_loop(
                server, "m", IMAGES, clients=3, requests_per_client=6
            )
        _assert_accounted(report)
        assert report.offered == 18
        assert report.completed == 18

    def test_single_client_is_sequential(self):
        with _server(_fast_executor, max_batch=8) as server:
            report = run_closed_loop(
                server, "m", IMAGES, clients=1, requests_per_client=5
            )
        # One closed-loop client can never coalesce with itself.
        assert report.batch_sizes == [1] * 5


class TestLoadReport:
    def test_percentiles_on_empty_report(self):
        report = LoadReport()
        assert report.percentile_ms(99) == 0.0
        assert report.achieved_rps == 0.0
