"""The serving bit-exactness property, stated as tests.

A sample submitted to the server under stream index ``i`` must yield
logits byte-identical to an offline forward of that sample alone,
positioned at ``i`` in the encoder stream -- no matter which batch the
dynamic batcher packed it into, in what order requests arrived, or
which numeric path (float or forced integer kernels) executed the
batch. This is the property that makes online serving trustworthy as a
drop-in for offline evaluation.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.quant import INT8_P2, convert
from repro.runtime import runtime_overrides
from repro.serving import (
    GatherStreamEncoder,
    InferenceServer,
    resolve_serve_config,
)
from repro.snn.encoding import DirectEncoder, RateEncoder

TIMESTEPS = 2


def _make_encoder(coding):
    if coding == "direct":
        return DirectEncoder()
    return RateEncoder(seed=123)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(41)
    return rng.random((10, 3, 8, 8)).astype(np.float32)


@pytest.fixture(scope="session")
def tiny_deployable_int8(tiny_trained_network):
    return convert(tiny_trained_network, INT8_P2)


def _offline_logits(model, images, coding):
    """Per-sample reference: each sample forwarded *alone*, positioned
    at its own index in a fresh encoder stream."""
    rows = []
    for index in range(len(images)):
        encoder = _make_encoder(coding).for_samples(index)
        out = model.forward(
            images[index : index + 1], TIMESTEPS, encoder, record=False
        )
        rows.append(np.ascontiguousarray(out.logits[0]))
    return rows


def _serve_all(model, images, coding, order, max_batch, max_wait_ms=20.0):
    server = InferenceServer(
        resolve_serve_config(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_depth=len(images) + 4,
            timeout_ms=60000.0,
        )
    )
    try:
        server.register(
            "m", model, TIMESTEPS, encoder=_make_encoder(coding)
        )
        pendings = [
            (index, server.submit("m", images[index], stream_index=index))
            for index in order
        ]
        return [(index, pending.result()) for index, pending in pendings]
    finally:
        server.shutdown()


class TestBatchingInvariance:
    @pytest.mark.parametrize("coding", ["direct", "rate"])
    def test_random_compositions_match_lone_sample(
        self, tiny_deployable, images, coding
    ):
        """Property: random arrival orders x random batching policies,
        every response byte-identical to the lone-sample reference."""
        reference = _offline_logits(tiny_deployable, images, coding)
        rng = np.random.default_rng(0)
        for trial in range(4):
            order = list(rng.permutation(len(images)))
            max_batch = int(rng.integers(1, 6))
            served = _serve_all(
                tiny_deployable, images, coding, order, max_batch
            )
            for index, response in served:
                assert (
                    response.logits.tobytes()
                    == reference[index].tobytes()
                ), (
                    f"trial {trial}: sample {index} diverged under "
                    f"max_batch={max_batch}, order={order}"
                )

    @pytest.mark.parametrize("coding", ["direct", "rate"])
    @pytest.mark.parametrize("int_kernels", ["off", "on"])
    def test_quantized_serving_matches_lone_sample(
        self, tiny_deployable_int8, images, coding, int_kernels
    ):
        """The property holds on the quantized deployable under both
        numeric paths -- forced integer kernels included."""
        with runtime_overrides(int_kernels=int_kernels):
            reference = _offline_logits(tiny_deployable_int8, images, coding)
            served = _serve_all(
                tiny_deployable_int8,
                images,
                coding,
                order=[7, 2, 9, 0, 5, 3, 8, 1, 6, 4],
                max_batch=3,
            )
            for index, response in served:
                assert (
                    response.logits.tobytes() == reference[index].tobytes()
                )

    def test_batch_of_strangers_matches_offline_batch(
        self, tiny_deployable, images
    ):
        """Serving a full arrival also matches the *batched* offline
        forward, not just lone samples -- the two references agree."""
        offline = tiny_deployable.forward(
            images, TIMESTEPS, RateEncoder(seed=123), record=False
        ).logits
        served = _serve_all(
            tiny_deployable,
            images,
            "rate",
            order=list(range(len(images))),
            max_batch=4,
        )
        for index, response in served:
            assert (
                response.logits.tobytes()
                == np.ascontiguousarray(offline[index]).tobytes()
            )

    def test_pooled_execution_serves_identical_bytes(
        self, tiny_deployable, images
    ):
        """A server whose endpoint fans batches out to a 2-worker pool
        returns the same bytes as the inline server -- warm pools stay
        invisible to clients."""
        reference = _offline_logits(tiny_deployable, images, "rate")
        server = InferenceServer(
            resolve_serve_config(
                max_batch=4, max_wait_ms=20.0, queue_depth=16,
                timeout_ms=60000.0,
            )
        )
        try:
            server.register(
                "m",
                tiny_deployable,
                TIMESTEPS,
                encoder=RateEncoder(seed=123),
                workers=2,
                shard_size=2,
            )
            pendings = [
                (i, server.submit("m", images[i], stream_index=i))
                for i in range(len(images))
            ]
            for index, pending in pendings:
                assert (
                    pending.result().logits.tobytes()
                    == reference[index].tobytes()
                )
        finally:
            server.shutdown()


class TestGatherStreamEncoder:
    def test_scattered_equals_per_sample(self, images):
        base = RateEncoder(seed=9)
        indices = [8, 1, 5]
        gathered = GatherStreamEncoder(base, indices)
        for t in range(3):
            got = gathered.encode(images[indices], t).data
            want = np.concatenate(
                [
                    RateEncoder(seed=9)
                    .for_samples(index)
                    .encode(images[index : index + 1], t)
                    .data
                    for index in indices
                ],
                axis=0,
            )
            assert got.tobytes() == want.tobytes()

    def test_contiguous_run_uses_vector_path_identically(self, images):
        base = RateEncoder(seed=9)
        gathered = GatherStreamEncoder(base, [4, 5, 6])
        got = gathered.encode(images[4:7], 1).data
        want = RateEncoder(seed=9).for_samples(4).encode(images[4:7], 1).data
        assert got.tobytes() == want.tobytes()

    def test_index_independent_base_delegates(self, images):
        base = DirectEncoder()
        gathered = GatherStreamEncoder(base, [9, 0, 4])
        got = gathered.encode(images[[9, 0, 4]], 0).data
        want = base.encode(images[[9, 0, 4]], 0).data
        assert got.tobytes() == want.tobytes()

    def test_for_samples_slices_the_window(self, images):
        """Sharding a gathered batch: the shard at offset k encodes
        under indices[k:], exactly like sharded_forward positions it."""
        base = RateEncoder(seed=9)
        gathered = GatherStreamEncoder(base, [8, 1, 5, 2])
        shard = gathered.for_samples(2)
        got = shard.encode(images[[5, 2]], 1).data
        want = GatherStreamEncoder(base, [5, 2]).encode(images[[5, 2]], 1).data
        assert got.tobytes() == want.tobytes()

    def test_prefix_encode_for_ragged_shards(self, images):
        gathered = GatherStreamEncoder(RateEncoder(seed=9), [8, 1, 5, 2])
        got = gathered.encode(images[[8, 1]], 0).data
        want = GatherStreamEncoder(RateEncoder(seed=9), [8, 1]).encode(
            images[[8, 1]], 0
        ).data
        assert got.tobytes() == want.tobytes()

    def test_too_many_samples_rejected(self, images):
        gathered = GatherStreamEncoder(RateEncoder(seed=9), [0, 1])
        with pytest.raises(ShapeError):
            gathered.encode(images[:3], 0)
