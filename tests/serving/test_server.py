"""InferenceServer behaviour: policy, admission, deadlines, lifecycle.

These tests drive the server through an injected executor (the same
seam the fault suite uses) so they pin down the *batching semantics* --
coalescing, backpressure, deadline handling, drain -- without paying
for real forwards. The bit-exactness of real execution is covered by
``test_batching_invariance.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    QueueFullError,
    RequestTimeoutError,
    ServerClosedError,
    ServingError,
    ShapeError,
)
from repro.serving import InferenceServer, resolve_serve_config
from repro.serving.config import (
    DRAIN_ENV,
    MAX_BATCH_ENV,
    MAX_WAIT_ENV,
    QUEUE_DEPTH_ENV,
    TIMEOUT_ENV,
    ServeConfig,
)


class _Model:
    input_shape = (1, 2, 2)

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise AssertionError("tests inject executors; forward is unused")


def _echo_executor(images, indices, timeout_s):
    """Logits row i = [stream_index, batch position, batch size]."""
    n = len(indices)
    return np.stack(
        [
            np.asarray([index, position, n], dtype=np.float32)
            for position, index in enumerate(indices)
        ]
    )


def _slow_executor(delay_s):
    def executor(images, indices, timeout_s):
        time.sleep(delay_s)
        return _echo_executor(images, indices, timeout_s)

    return executor


def _server(executor=_echo_executor, **knobs):
    knobs.setdefault("max_wait_ms", 5.0)
    knobs.setdefault("timeout_ms", 10000.0)
    server = InferenceServer(resolve_serve_config(**knobs))
    server.register("m", _Model(), timesteps=2, executor=executor)
    return server


IMG = np.zeros((1, 2, 2), dtype=np.float32)


class TestBatching:
    def test_burst_coalesces_up_to_max_batch(self):
        with _server(max_batch=4, max_wait_ms=50.0, queue_depth=32) as server:
            pendings = [
                server.submit("m", IMG, stream_index=i) for i in range(10)
            ]
            responses = [p.result() for p in pendings]
        sizes = [int(r.logits[2]) for r in responses]
        assert max(sizes) > 1  # the burst actually coalesced
        assert all(size <= 4 for size in sizes)
        assert all(r.batch_size == int(r.logits[2]) for r in responses)

    def test_requests_keep_their_stream_index(self):
        with _server(max_batch=3, max_wait_ms=50.0) as server:
            order = [5, 0, 9, 2, 7]
            pendings = [
                (i, server.submit("m", IMG, stream_index=i)) for i in order
            ]
            for index, pending in pendings:
                assert int(pending.result().logits[0]) == index

    def test_max_batch_one_disables_coalescing(self):
        with _server(max_batch=1, max_wait_ms=0.0) as server:
            pendings = [server.submit("m", IMG) for _ in range(5)]
            assert all(p.result().batch_size == 1 for p in pendings)

    def test_response_carries_prediction_and_latency(self):
        with _server(max_batch=1) as server:
            response = server.submit("m", IMG, stream_index=3).result()
        assert response.prediction == int(np.argmax(response.logits))
        assert response.latency_ms >= response.queue_ms >= 0.0
        assert response.model == "m"


class TestAdmission:
    def test_queue_overflow_rejected_typed(self):
        server = _server(
            executor=_slow_executor(0.2),
            max_batch=1,
            max_wait_ms=0.0,
            queue_depth=2,
            timeout_ms=0.0,
        )
        try:
            accepted, rejected = [], 0
            for i in range(10):
                try:
                    accepted.append(server.submit("m", IMG, stream_index=i))
                except QueueFullError:
                    rejected += 1
            assert rejected > 0
            for pending in accepted:
                pending.result()  # accepted work still completes
            stats = server.stats()["m"]
            assert stats["rejected_full"] == rejected
            assert stats["completed"] == len(accepted)
            assert stats["submitted"] == 10
        finally:
            server.shutdown()

    def test_unknown_model_rejected(self):
        with _server() as server:
            with pytest.raises(ServingError, match="no model registered"):
                server.submit("ghost", IMG)

    def test_wrong_shape_rejected(self):
        with _server() as server:
            with pytest.raises(ShapeError):
                server.submit("m", np.zeros((3, 2, 2), dtype=np.float32))

    def test_negative_stream_index_rejected(self):
        with _server() as server:
            with pytest.raises(ServingError):
                server.submit("m", IMG, stream_index=-1)

    def test_duplicate_registration_rejected(self):
        with _server() as server:
            with pytest.raises(ServingError, match="already registered"):
                server.register("m", _Model(), 2, executor=_echo_executor)


class TestDeadlines:
    def test_slow_execution_times_out_client_side(self):
        with _server(
            executor=_slow_executor(0.5), max_batch=1, timeout_ms=60.0
        ) as server:
            pending = server.submit("m", IMG)
            started = time.monotonic()
            with pytest.raises(RequestTimeoutError):
                pending.result()
            # Resolved at the deadline, not after the executor finished.
            assert time.monotonic() - started < 0.4

    def test_expired_queued_requests_dropped_server_side(self):
        server = _server(
            executor=_slow_executor(0.3),
            max_batch=1,
            max_wait_ms=0.0,
            queue_depth=8,
            timeout_ms=100.0,
        )
        try:
            pendings = [server.submit("m", IMG) for _ in range(3)]
            outcomes = []
            for pending in pendings:
                try:
                    pending.result()
                    outcomes.append("done")
                except RequestTimeoutError:
                    outcomes.append("timeout")
            assert "timeout" in outcomes  # queued behind the slow batch
            assert server.stats()["m"]["timed_out"] == outcomes.count(
                "timeout"
            )
        finally:
            server.shutdown()

    def test_per_request_override_beats_config_default(self):
        with _server(
            executor=_slow_executor(0.3), max_batch=1, timeout_ms=10000.0
        ) as server:
            pending = server.submit("m", IMG, timeout_ms=50.0)
            with pytest.raises(RequestTimeoutError):
                pending.result()

    def test_zero_timeout_disables_deadline(self):
        with _server(
            executor=_slow_executor(0.15), max_batch=1, timeout_ms=0.0
        ) as server:
            assert server.submit("m", IMG).result().batch_size == 1

    def test_explicit_result_wait_does_not_kill_the_request(self):
        """A caller's own (shorter) wait bound raises without resolving
        the request; a later wait still collects the response."""
        with _server(
            executor=_slow_executor(0.2), max_batch=1, timeout_ms=0.0
        ) as server:
            pending = server.submit("m", IMG)
            with pytest.raises(RequestTimeoutError, match="still pending"):
                pending.result(timeout=0.01)
            assert pending.result().batch_size == 1

    def test_deadline_propagated_to_executor(self):
        seen = []

        def capture(images, indices, timeout_s):
            seen.append(timeout_s)
            return _echo_executor(images, indices, timeout_s)

        with _server(executor=capture, max_batch=1, timeout_ms=500.0) as server:
            server.submit("m", IMG).result()
        assert len(seen) == 1 and seen[0] is not None
        assert 0.0 < seen[0] <= 0.5

    def test_no_deadline_propagates_none(self):
        seen = []

        def capture(images, indices, timeout_s):
            seen.append(timeout_s)
            return _echo_executor(images, indices, timeout_s)

        with _server(executor=capture, max_batch=1, timeout_ms=0.0) as server:
            server.submit("m", IMG).result()
        assert seen == [None]


class TestLifecycle:
    def test_drain_finishes_queued_work(self):
        server = _server(
            executor=_slow_executor(0.05),
            max_batch=2,
            max_wait_ms=0.0,
            timeout_ms=0.0,
        )
        pendings = [server.submit("m", IMG) for _ in range(6)]
        assert server.drain()
        for pending in pendings:
            assert pending.result().batch_size >= 1
        stats = server.stats()["m"]
        assert stats["completed"] == 6

    def test_submit_after_drain_rejected_typed(self):
        server = _server()
        server.drain()
        with pytest.raises(ServerClosedError):
            server.submit("m", IMG)
        assert server.stats()["m"]["rejected_closed"] == 1

    def test_hard_shutdown_fails_queued_requests_typed(self):
        server = _server(
            executor=_slow_executor(0.3),
            max_batch=1,
            max_wait_ms=0.0,
            timeout_ms=0.0,
        )
        pendings = [server.submit("m", IMG) for _ in range(4)]
        server.shutdown(drain=False)
        outcomes = []
        for pending in pendings:
            try:
                pending.result()
                outcomes.append("done")
            except ServerClosedError:
                outcomes.append("closed")
        # Nothing hangs; whatever had not started resolves as closed.
        assert outcomes.count("closed") >= 3

    def test_context_manager_shuts_down(self):
        with _server() as server:
            server.submit("m", IMG).result()
        with pytest.raises(ServerClosedError):
            server.submit("m", IMG)

    def test_register_after_shutdown_rejected(self):
        server = _server()
        server.shutdown()
        with pytest.raises(ServerClosedError):
            server.register("late", _Model(), 2, executor=_echo_executor)

    def test_models_listing(self):
        with _server() as server:
            server.register("n", _Model(), 2, executor=_echo_executor)
            assert server.models == ["m", "n"]


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.max_batch == 8
        assert config.queue_depth == 64

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV, "16")
        monkeypatch.setenv(MAX_WAIT_ENV, "7.5")
        monkeypatch.setenv(QUEUE_DEPTH_ENV, "128")
        monkeypatch.setenv(TIMEOUT_ENV, "250")
        monkeypatch.setenv(DRAIN_ENV, "500")
        config = resolve_serve_config()
        assert config == ServeConfig(
            max_batch=16,
            max_wait_ms=7.5,
            queue_depth=128,
            timeout_ms=250.0,
            drain_ms=500.0,
        )

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV, "16")
        assert resolve_serve_config(max_batch=2).max_batch == 2

    @pytest.mark.parametrize(
        "env,value",
        [
            (MAX_BATCH_ENV, "0"),
            (MAX_BATCH_ENV, "eight"),
            (MAX_WAIT_ENV, "-1"),
            (QUEUE_DEPTH_ENV, "0"),
            (TIMEOUT_ENV, "soon"),
            (DRAIN_ENV, "-3"),
        ],
    )
    def test_bad_env_values_rejected(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        with pytest.raises(ConfigError):
            resolve_serve_config()

    def test_bad_explicit_values_rejected(self):
        with pytest.raises(ConfigError):
            resolve_serve_config(queue_depth=0)
        with pytest.raises(ConfigError):
            resolve_serve_config(max_wait_ms=-0.5)


class TestStatsAccounting:
    def test_every_admission_resolves_exactly_once(self):
        """submitted == accepted + rejected; accepted == completed +
        timed_out + failed + still-pending(0 after shutdown)."""
        server = _server(
            executor=_slow_executor(0.05),
            max_batch=2,
            max_wait_ms=0.0,
            queue_depth=4,
            timeout_ms=90.0,
        )
        pendings = []
        for i in range(12):
            try:
                pendings.append(server.submit("m", IMG, stream_index=i))
            except QueueFullError:
                pass
        for pending in pendings:
            try:
                pending.result()
            except (RequestTimeoutError, ServerClosedError):
                pass
        server.shutdown()
        stats = server.stats()["m"]
        assert stats["submitted"] == 12
        assert (
            stats["accepted"] + stats["rejected_full"] == stats["submitted"]
        )
        assert (
            stats["completed"]
            + stats["timed_out"]
            + stats["failed"]
            + stats["rejected_closed"]
            == stats["accepted"]
        )

    def test_concurrent_submitters_are_safe(self):
        with _server(max_batch=4, max_wait_ms=2.0, queue_depth=256) as server:
            results = []
            lock = threading.Lock()

            def client(base):
                for i in range(20):
                    response = server.submit(
                        "m", IMG, stream_index=base + i
                    ).result()
                    with lock:
                        results.append(int(response.logits[0]))

            threads = [
                threading.Thread(target=client, args=(base,))
                for base in (0, 100, 200)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sorted(results) == sorted(
                base + i for base in (0, 100, 200) for i in range(20)
            )
            stats = server.stats()["m"]
            assert stats["completed"] == 60
