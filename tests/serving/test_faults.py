"""Fault injection against the serving layer: abuse must resolve typed.

Three induced failures -- worker death, wedged (slow) worker, queue
overflow -- each of which must surface to every affected caller as a
typed error, leave the server serving, and never hang. Worker death at
the *pool* level (real SIGKILL) is covered by
``tests/parallel/test_worker_service.py``; here the executor seam
injects the same typed outcomes into the batcher, plus one end-to-end
test that routes a real killed worker through a served request.
"""

import os
import time

import numpy as np
import pytest

from repro.errors import (
    RequestTimeoutError,
    ServerClosedError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.serving import InferenceServer, resolve_serve_config


class _Model:
    input_shape = (1, 2, 2)

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise AssertionError("tests inject executors; forward is unused")


IMG = np.zeros((1, 2, 2), dtype=np.float32)


def _ok_executor(images, indices, timeout_s):
    return np.zeros((len(indices), 3), dtype=np.float32)


def _kill_pool_worker(task):
    import signal

    if task == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(0.3)
    return task


class _FlakyExecutor:
    """Raises ``error`` for the first ``failures`` batches, then heals."""

    def __init__(self, error, failures=1):
        self.error = error
        self.failures = failures
        self.calls = 0

    def __call__(self, images, indices, timeout_s):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return _ok_executor(images, indices, timeout_s)


def _server(executor, **knobs):
    knobs.setdefault("max_wait_ms", 5.0)
    knobs.setdefault("timeout_ms", 10000.0)
    server = InferenceServer(resolve_serve_config(**knobs))
    server.register("m", _Model(), timesteps=2, executor=executor)
    return server


class TestWorkerDeath:
    def test_crash_fails_the_whole_batch_typed(self):
        executor = _FlakyExecutor(WorkerCrashError("induced death"))
        with _server(executor, max_batch=4, max_wait_ms=50.0) as server:
            pendings = [
                server.submit("m", IMG, stream_index=i) for i in range(3)
            ]
            for pending in pendings:
                with pytest.raises(WorkerCrashError):
                    pending.result()
            # The server survives and the next batch is served.
            assert server.submit("m", IMG).result().batch_size == 1
            stats = server.stats()["m"]
            assert stats["failed"] == 3
            assert stats["completed"] == 1

    def test_real_killed_worker_resolves_served_request(self):
        """End to end: a served batch whose pooled execution loses a
        worker to SIGKILL resolves with the parallel layer's typed
        crash error -- request, batcher and pool all stay unwedged."""
        from repro.parallel import run_tasks, shutdown_worker_service

        def killing_executor(images, indices, timeout_s):
            run_tasks(
                _kill_pool_worker, ["die", "a", "b", "c"], workers=2
            )
            return _ok_executor(images, indices, timeout_s)

        shutdown_worker_service()
        try:
            with _server(killing_executor, max_batch=1) as server:
                pending = server.submit("m", IMG)
                with pytest.raises(WorkerCrashError):
                    pending.result()
        finally:
            shutdown_worker_service()


class TestSlowWorker:
    def test_wedged_executor_times_out_not_hangs(self):
        def wedged(images, indices, timeout_s):
            time.sleep(1.0)
            return _ok_executor(images, indices, timeout_s)

        with _server(wedged, max_batch=1, timeout_ms=80.0) as server:
            pending = server.submit("m", IMG)
            started = time.monotonic()
            with pytest.raises(RequestTimeoutError):
                pending.result()
            assert time.monotonic() - started < 0.6

    def test_pool_timeout_surfaces_as_typed_failure(self):
        executor = _FlakyExecutor(WorkerTimeoutError("induced stall"))
        with _server(executor, max_batch=1, timeout_ms=0.0) as server:
            with pytest.raises(WorkerTimeoutError):
                server.submit("m", IMG).result()
            assert server.submit("m", IMG).result().batch_size == 1

    def test_malformed_executor_output_fails_typed(self):
        from repro.errors import ServingError

        def ragged(images, indices, timeout_s):
            return np.zeros((len(indices) + 2, 3), dtype=np.float32)

        with _server(ragged, max_batch=2, max_wait_ms=20.0) as server:
            pendings = [server.submit("m", IMG) for _ in range(2)]
            for pending in pendings:
                with pytest.raises(ServingError):
                    pending.result()


class TestQueueOverflowRecovery:
    def test_overflow_sheds_then_recovers(self):
        def slow(images, indices, timeout_s):
            time.sleep(0.1)
            return _ok_executor(images, indices, timeout_s)

        server = _server(
            slow,
            max_batch=1,
            max_wait_ms=0.0,
            queue_depth=2,
            timeout_ms=0.0,
        )
        try:
            from repro.errors import QueueFullError

            pendings, rejected = [], 0
            for i in range(8):
                try:
                    pendings.append(server.submit("m", IMG, stream_index=i))
                except QueueFullError:
                    rejected += 1
            assert rejected > 0
            for pending in pendings:
                pending.result()
            # Backlog cleared: admission works again at full depth.
            assert server.submit("m", IMG).result() is not None
        finally:
            server.shutdown()


class TestSelfHealingServing:
    """The serving layer inherits shard retry and the pool breaker."""

    def test_crash_then_retry_completes_byte_identical(
        self, tiny_deployable, monkeypatch
    ):
        """A served batch that loses a worker to an injected SIGKILL on
        its first attempt is transparently retried and returns logits
        byte-identical to a fault-free serve of the same requests."""
        from repro.parallel import retry_stats, shutdown_worker_service
        from repro.parallel.retry import reset_retry_stats
        from repro.snn.encoding import RateEncoder

        rng = np.random.default_rng(17)
        images = rng.random((4, 3, 8, 8)).astype(np.float32)

        def serve_all():
            server = InferenceServer(
                resolve_serve_config(
                    max_batch=4,
                    max_wait_ms=60.0,
                    queue_depth=16,
                    timeout_ms=60000.0,
                )
            )
            try:
                server.register(
                    "m",
                    tiny_deployable,
                    timesteps=2,
                    encoder=RateEncoder(seed=123),
                    workers=2,
                    shard_size=2,
                )
                pendings = [
                    server.submit("m", images[i], stream_index=i)
                    for i in range(len(images))
                ]
                return [p.result().logits.tobytes() for p in pendings]
            finally:
                server.shutdown()

        # Keep the breaker out of the picture: one injected crash must
        # exercise the *retry* path, not the inline degraded path. The
        # shared service instance outlives shutdown_worker_service(), so
        # pin its breaker directly rather than through the environment.
        from repro.parallel import CircuitBreaker, shared_service

        monkeypatch.setattr(
            shared_service(), "breaker", CircuitBreaker(threshold=1000)
        )
        shutdown_worker_service()
        try:
            clean = serve_all()
            monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=0,crash@0:0")
            reset_retry_stats()
            faulted = serve_all()
            stats = retry_stats()
            assert stats.retries >= 1, "injected crash never fired"
            assert stats.recovered_calls >= 1
            assert stats.quarantined == 0
        finally:
            shutdown_worker_service()
        assert faulted == clean

    def test_drain_during_open_breaker_neither_hangs_nor_drops(
        self, tiny_deployable, monkeypatch
    ):
        """With the pool breaker forced open, queued requests complete
        through the inline degraded path: ``drain()`` returns promptly
        and the accounting shows every request completed, none lost."""
        from repro.parallel import (
            CircuitBreaker,
            shared_service,
            shutdown_worker_service,
        )
        from repro.snn.encoding import RateEncoder

        shutdown_worker_service()
        try:
            service = shared_service()
            # The shared instance persists across tests; install a fresh
            # breaker (restored by monkeypatch) with a long cooldown so
            # it stays open for the whole drain.
            monkeypatch.setattr(
                service,
                "breaker",
                CircuitBreaker(threshold=1, cooldown_s=60.0),
            )
            serial_before = service.stats.breaker_serial_runs
            assert service.breaker.record_abort(), "threshold-1 must trip"
            assert service.breaker.state == "open"

            rng = np.random.default_rng(18)
            images = rng.random((4, 3, 8, 8)).astype(np.float32)
            server = InferenceServer(
                resolve_serve_config(
                    max_batch=4,
                    max_wait_ms=60.0,
                    queue_depth=16,
                    timeout_ms=60000.0,
                )
            )
            try:
                # shard_size=1: every multi-sample batch produces several
                # shards, so execution must go through the pooled path
                # (where the open breaker degrades it to inline) rather
                # than the single-shard serial fallback.
                server.register(
                    "m",
                    tiny_deployable,
                    timesteps=2,
                    encoder=RateEncoder(seed=123),
                    workers=2,
                    shard_size=1,
                )
                pendings = [
                    server.submit("m", images[i], stream_index=i)
                    for i in range(len(images))
                ]
                started = time.monotonic()
                assert server.drain(timeout_s=30.0)
                assert time.monotonic() - started < 20.0
                for pending in pendings:
                    assert pending.result().logits is not None
                stats = server.stats()["m"]
                assert stats["completed"] == len(images)
                assert stats["failed"] == 0
            finally:
                server.shutdown()
            assert service.stats.breaker_serial_runs > serial_before
            assert service.breaker.state == "open"  # never half-opened
        finally:
            shutdown_worker_service()


class TestNoHangGuarantee:
    def test_abandoned_inflight_work_resolves_on_shutdown(self):
        """Even a shutdown racing a slow in-flight batch leaves every
        pending handle resolvable -- completed or typed, never stuck."""

        def slow(images, indices, timeout_s):
            time.sleep(0.15)
            return _ok_executor(images, indices, timeout_s)

        server = _server(
            slow, max_batch=1, max_wait_ms=0.0, timeout_ms=0.0
        )
        pendings = [server.submit("m", IMG) for _ in range(4)]
        server.shutdown(drain=False)
        resolved = 0
        for pending in pendings:
            try:
                pending.result(timeout=2.0)
                resolved += 1
            except ServerClosedError:
                resolved += 1
        assert resolved == 4
