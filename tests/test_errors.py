"""Exception hierarchy tests: one base class catches everything."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ShapeError,
    errors.GraphError,
    errors.ConfigError,
    errors.ArchitectureError,
    errors.QuantizationError,
    errors.HardwareModelError,
    errors.CapacityError,
    errors.WorkloadError,
    errors.DatasetError,
    errors.ExperimentError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_capacity_is_hardware_error():
    assert issubclass(errors.CapacityError, errors.HardwareModelError)


def test_one_except_clause_catches_library_errors():
    caught = []
    for exc in ALL_ERRORS:
        try:
            raise exc("boom")
        except errors.ReproError as caught_exc:
            caught.append(type(caught_exc))
    assert caught == ALL_ERRORS


def test_repro_error_not_caught_as_value_error():
    with pytest.raises(errors.ReproError):
        try:
            raise errors.ConfigError("x")
        except ValueError:  # pragma: no cover - must not happen
            pytest.fail("ReproError must not be a ValueError")
