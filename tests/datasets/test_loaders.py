"""Dataset container / split / batching tests."""

import numpy as np
import pytest

from repro.datasets import Dataset, train_test_split
from repro.errors import DatasetError


def _dataset(n=20, classes=4):
    rng = np.random.default_rng(0)
    return Dataset(
        rng.random((n, 3, 8, 8)).astype(np.float32),
        np.arange(n) % classes,
        num_classes=classes,
        name="test",
    )


class TestDataset:
    def test_len_and_shape(self):
        data = _dataset()
        assert len(data) == 20
        assert data.image_shape == (3, 8, 8)

    def test_validates_rank(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((4, 8, 8)), np.zeros(4), num_classes=2)

    def test_validates_lengths(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((4, 3, 8, 8)), np.zeros(3), num_classes=2)

    def test_validates_classes(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((4, 3, 8, 8)), np.zeros(4), num_classes=1)

    def test_batches_cover_everything(self):
        data = _dataset()
        seen = 0
        for images, labels in data.batches(6):
            assert len(images) == len(labels)
            seen += len(images)
        assert seen == 20

    def test_batches_shuffle_deterministic(self):
        data = _dataset()
        a = [l for _, l in data.batches(5, shuffle=True, seed=3)]
        b = [l for _, l in data.batches(5, shuffle=True, seed=3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_batches_bad_size(self):
        with pytest.raises(DatasetError):
            list(_dataset().batches(0))

    def test_subset(self):
        sub = _dataset().subset(8)
        assert len(sub) == 8

    def test_subset_out_of_range(self):
        with pytest.raises(DatasetError):
            _dataset().subset(0)
        with pytest.raises(DatasetError):
            _dataset().subset(21)


class TestSplit:
    def test_sizes(self):
        train, test = train_test_split(_dataset(), 0.25, seed=0)
        assert len(test) == 5
        assert len(train) == 15

    def test_disjoint_and_complete(self):
        data = _dataset()
        train, test = train_test_split(data, 0.3, seed=0)
        combined = np.concatenate([train.images, test.images])
        assert combined.shape[0] == len(data)
        # All original rows appear exactly once (match by content).
        original = {d.tobytes() for d in data.images}
        split = {d.tobytes() for d in combined}
        assert original == split

    def test_bad_fraction(self):
        with pytest.raises(DatasetError):
            train_test_split(_dataset(), 0.0)
        with pytest.raises(DatasetError):
            train_test_split(_dataset(), 1.0)

    def test_deterministic(self):
        a_train, _ = train_test_split(_dataset(), 0.2, seed=9)
        b_train, _ = train_test_split(_dataset(), 0.2, seed=9)
        np.testing.assert_array_equal(a_train.images, b_train.images)
