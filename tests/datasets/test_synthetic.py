"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.datasets import (
    cifar10_like,
    cifar100_like,
    make_dataset,
    svhn_like,
)
from repro.errors import DatasetError


class TestCommonProperties:
    @pytest.mark.parametrize("name", ["svhn", "cifar10", "cifar100"])
    def test_shapes_and_range(self, name):
        data = make_dataset(name, 50, image_size=16, seed=0)
        assert data.images.shape == (50, 3, 16, 16)
        assert data.images.dtype == np.float32
        assert data.images.min() >= 0.0
        assert data.images.max() <= 1.0

    @pytest.mark.parametrize("name", ["svhn", "cifar10", "cifar100"])
    def test_deterministic(self, name):
        a = make_dataset(name, 20, image_size=8, seed=5)
        b = make_dataset(name, 20, image_size=8, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize("name", ["svhn", "cifar10", "cifar100"])
    def test_seed_changes_data(self, name):
        a = make_dataset(name, 20, image_size=8, seed=1)
        b = make_dataset(name, 20, image_size=8, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_labels_interleaved(self):
        data = make_dataset("cifar10", 25, image_size=8, seed=0)
        np.testing.assert_array_equal(data.labels, np.arange(25) % 10)

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            make_dataset("imagenet", 10)

    def test_rejects_bad_sizes(self):
        with pytest.raises(DatasetError):
            svhn_like(0)
        with pytest.raises(DatasetError):
            svhn_like(10, image_size=7)
        with pytest.raises(DatasetError):
            svhn_like(10, image_size=6)


class TestClassCounts:
    def test_svhn_ten_classes(self):
        assert svhn_like(10, image_size=8).num_classes == 10

    def test_cifar100_hundred_classes(self):
        assert cifar100_like(10, image_size=8).num_classes == 100


class TestSeparability:
    """The generators must be class-separable: a nearest-centroid
    classifier on raw pixels should beat chance comfortably."""

    def _centroid_accuracy(self, data, classes):
        images = data.images.reshape(len(data), -1)
        centroids = np.stack([
            images[data.labels == c].mean(axis=0) for c in range(classes)
        ])
        distance = ((images[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        return float((distance.argmin(axis=1) == data.labels).mean())

    def test_svhn_separable(self):
        data = svhn_like(200, image_size=16, seed=0)
        assert self._centroid_accuracy(data, 10) > 0.5

    def test_cifar10_separable(self):
        data = cifar10_like(200, image_size=16, seed=0)
        assert self._centroid_accuracy(data, 10) > 0.3

    def test_cifar100_harder_than_cifar10(self):
        c10 = cifar10_like(400, image_size=16, seed=0)
        c100 = cifar100_like(2000, image_size=16, seed=0)
        acc10 = self._centroid_accuracy(c10, 10)
        acc100 = self._centroid_accuracy(c100, 100)
        assert acc100 < acc10

    def test_cifar100_above_chance(self):
        data = cifar100_like(2000, image_size=16, seed=0)
        assert self._centroid_accuracy(data, 100) > 0.05


class TestSvhnStructure:
    def test_glyph_roughly_centred(self):
        data = svhn_like(40, image_size=32, seed=0)
        # Ink (bright pixels) mass should sit near the image centre.
        bright = (data.images.max(axis=1) > 0.6).astype(np.float32)
        ys, xs = np.meshgrid(np.arange(32), np.arange(32), indexing="ij")
        for frame in bright[:10]:
            if frame.sum() == 0:
                continue
            cy = (frame * ys).sum() / frame.sum()
            cx = (frame * xs).sum() / frame.sum()
            assert 8 <= cy <= 24
            assert 8 <= cx <= 24
