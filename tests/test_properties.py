"""System-level property-based tests (hypothesis).

These encode invariants that must hold for any input, not just the
examples the unit tests pick: LIF conservation laws, OR-pool semantics,
conv/event-driven duality, compression accounting.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.compression import compress_exact
from repro.hw.event_sim import EventDrivenLayerSim, reference_conv
from repro.quant.convert import _or_pool
from repro.snn.neuron import LIFConfig, LIFNeuron
from repro.tensor import Tensor


@st.composite
def spike_maps(draw, max_channels=3, max_size=6):
    channels = draw(st.integers(1, max_channels))
    size = draw(st.integers(3, max_size))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return (rng.random((channels, size, size)) < density).astype(np.float32)


class TestLIFInvariants:
    @given(
        st.floats(0.0, 1.0),
        st.floats(0.1, 2.0),
        st.lists(st.floats(-2.0, 2.0, width=32), min_size=1, max_size=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_reset_by_subtraction_invariants(self, beta, theta, currents):
        """Eq. 1/2 step invariants: a silent step leaves the membrane at
        or below threshold; a spiking step leaves it non-negative minus
        epsilon (integrated > theta, reset subtracts exactly theta)."""
        neuron = LIFNeuron(LIFConfig(beta=beta, threshold=theta))
        membrane = None
        for current in currents:
            tensor = Tensor(np.array([current], dtype=np.float32))
            spike, membrane = neuron.step(tensor, membrane)
            assert spike.data[0] in (0.0, 1.0)
            if spike.data[0] == 0.0:
                assert membrane.data[0] <= theta + 1e-5
            else:
                assert membrane.data[0] >= -1e-5

    @given(st.floats(0.0, 0.99), st.floats(0.1, 2.0), st.integers(1, 30))
    @settings(max_examples=50, deadline=None)
    def test_zero_input_never_spikes(self, beta, theta, steps):
        neuron = LIFNeuron(LIFConfig(beta=beta, threshold=theta))
        membrane = None
        zero = Tensor(np.zeros(1, dtype=np.float32))
        for _ in range(steps):
            spike, membrane = neuron.step(zero, membrane)
            assert spike.data[0] == 0.0

    @given(st.floats(0.1, 2.0), st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_spike_count_conservation(self, theta, steps):
        """Total charge in = charge spiked out + residual membrane, for
        beta=1 (no leak): sum(I) == spikes*theta + u_final."""
        neuron = LIFNeuron(LIFConfig(beta=1.0, threshold=theta))
        rng = np.random.default_rng(0)
        currents = rng.uniform(0, 1, size=steps).astype(np.float32)
        membrane = None
        total_spikes = 0.0
        for current in currents:
            spike, membrane = neuron.step(
                Tensor(np.array([current], dtype=np.float32)), membrane
            )
            total_spikes += float(spike.data[0])
        lhs = float(currents.sum())
        rhs = total_spikes * theta + float(membrane.data[0])
        assert abs(lhs - rhs) < 1e-3


class TestPoolingInvariants:
    @given(spike_maps(max_channels=4, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_or_pool_equals_any(self, maps):
        c, h, w = maps.shape
        if h % 2 or w % 2:
            maps = maps[:, : h - h % 2, : w - w % 2]
            if maps.shape[1] < 2 or maps.shape[2] < 2:
                return
        pooled = _or_pool(maps[None], 2)[0]
        c, h, w = maps.shape
        tiles = maps.reshape(c, h // 2, 2, w // 2, 2)
        expected = (tiles.sum(axis=(2, 4)) > 0).astype(np.float32)
        np.testing.assert_array_equal(pooled, expected)

    @given(spike_maps(max_channels=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_pool_never_creates_spikes(self, maps):
        h, w = maps.shape[1:]
        maps = maps[:, : h - h % 2, : w - w % 2]
        if maps.shape[1] < 2 or maps.shape[2] < 2:
            return
        pooled = _or_pool(maps[None], 2)[0]
        assert pooled.sum() <= maps.sum()
        if maps.sum() == 0:
            assert pooled.sum() == 0


class TestEventDrivenDuality:
    @given(spike_maps(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_scatter_equals_gather(self, maps, weight_seed):
        rng = np.random.default_rng(weight_seed)
        cout = int(rng.integers(1, 4))
        weight = rng.normal(size=(cout, maps.shape[0], 3, 3)).astype(np.float32)
        result = EventDrivenLayerSim().run_conv(maps, weight)
        np.testing.assert_allclose(
            result.membrane, reference_conv(maps, weight), atol=1e-4
        )

    @given(spike_maps())
    @settings(max_examples=40, deadline=None)
    def test_updates_proportional_to_events(self, maps):
        weight = np.ones((2, maps.shape[0], 3, 3), dtype=np.float32)
        result = EventDrivenLayerSim(nc_count=1).run_conv(maps, weight)
        events = int(maps.sum())
        assert result.scheduled_updates == events * 9 * 2


class TestCompressionAccounting:
    @given(spike_maps(max_channels=1, max_size=8), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_events_conserved(self, maps, chunk):
        flat = maps.reshape(-1)
        result = compress_exact(flat, chunk)
        assert result.spike_count == int(flat.sum())

    @given(spike_maps(max_channels=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_wider_encoder_never_slower(self, maps):
        """A wider priority-encoder chunk can only reduce scan cycles."""
        flat = maps.reshape(-1)
        narrow = compress_exact(flat, 4).cycles
        wide = compress_exact(flat, 32).cycles
        assert wide <= narrow
