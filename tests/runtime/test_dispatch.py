"""Density dispatcher behaviour and configuration edge cases."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.quant import FP32, convert
from repro.runtime import (
    RuntimeConfig,
    runtime_config,
    runtime_overrides,
)
from repro.snn import build_network
from repro.snn.encoding import Encoder, RateEncoder
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def deployable():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=321
    )
    net.eval()
    return convert(net, FP32)


class _HalfEncoder(Encoder):
    """Emits non-binary (0.5) 'spikes' while claiming analog_input=False."""

    analog_input = False
    name = "half"

    def encode(self, images, t):
        return Tensor(np.full_like(images, 0.5, dtype=np.float32))


class TestDensityEdges:
    def test_density_zero_takes_event_path(self, deployable):
        zeros = np.zeros((4, 3, 8, 8), dtype=np.float32)
        legacy = deployable.forward_legacy(zeros, 2, RateEncoder(seed=0))
        out = deployable.forward(zeros, 2, RateEncoder(seed=0))
        assert np.array_equal(legacy.logits, out.logits)
        counters = out.runtime_counters
        # All-zero input: density 0 <= threshold, event path, zero updates.
        assert counters["conv1_1"].event_steps == 2
        assert counters["conv1_1"].event_updates == 0

    def test_density_one_takes_dense_path(self, deployable):
        ones = np.ones((4, 3, 8, 8), dtype=np.float32)
        legacy = deployable.forward_legacy(ones, 2, RateEncoder(seed=0))
        out = deployable.forward(ones, 2, RateEncoder(seed=0))
        assert np.array_equal(legacy.logits, out.logits)
        # Rate coding of all-ones frames fires every pixel: density 1.
        assert out.runtime_counters["conv1_1"].dense_steps == 2
        assert out.runtime_counters["conv1_1"].event_steps == 0

    def test_density_one_forced_event_still_exact(self, deployable):
        ones = np.ones((4, 3, 8, 8), dtype=np.float32)
        legacy = deployable.forward_legacy(ones, 2, RateEncoder(seed=0))
        with runtime_overrides(force_path="event"):
            out = deployable.forward(ones, 2, RateEncoder(seed=0))
        assert np.array_equal(legacy.logits, out.logits)
        assert out.runtime_counters["conv1_1"].event_steps == 2

    def test_threshold_zero_disables_event_path(self, deployable):
        zeros = np.zeros((4, 3, 8, 8), dtype=np.float32)
        with runtime_overrides(dispatch_threshold=0.0):
            out = deployable.forward(zeros, 2, RateEncoder(seed=0))
        assert all(
            c.event_steps == 0 for c in out.runtime_counters.values()
        )

    def test_threshold_one_routes_binary_conv_steps_to_event(self, deployable):
        ones = np.ones((4, 3, 8, 8), dtype=np.float32)
        with runtime_overrides(dispatch_threshold=1.0):
            out = deployable.forward(ones, 2, RateEncoder(seed=0))
        counters = out.runtime_counters
        assert counters["conv1_1"].event_steps == 2
        assert counters["conv2_1"].event_steps == 2
        assert counters["fc1"].event_steps == 0  # fc stays dense by design

    def test_analog_input_never_takes_event_path(self, deployable):
        images = np.random.default_rng(0).random((4, 3, 8, 8)).astype(np.float32)
        with runtime_overrides(force_path="event"):
            out = deployable.forward(images, 2)  # direct coding: analog
        counters = out.runtime_counters
        assert counters["conv1_1"].event_steps == 0
        assert counters["conv1_1"].dense_steps == 2
        assert counters["conv2_1"].event_steps == 2

    def test_uncalibrated_shape_never_dispatches_to_event(self):
        """With blocking disabled, a deep shape whose full-K GEMM fold
        fails the unblocked probe must stay dense -- the pre-blocked-fold
        fallback contract, now opt-in via event_kblock=0."""
        from repro.runtime import calibrate_event_exact, resolve_event_backend
        from repro.runtime.plan import plan_deployable

        net = build_network(
            "64C3-MP2-40", input_shape=(64, 8, 8), num_classes=10, seed=9
        )
        net.eval()
        deployable = convert(net, FP32)
        plan = plan_deployable(deployable)
        verdict = calibrate_event_exact(
            plan.layers[0], resolve_event_backend("auto")
        )
        images = np.random.default_rng(1).random((3, 64, 8, 8)).astype(np.float32)
        legacy = deployable.forward_legacy(images, 2, RateEncoder(seed=2))
        with runtime_overrides(force_path="event", event_kblock=0):
            out = deployable.forward(images, 2, RateEncoder(seed=2))
        # Bit-exact either way; unblocked event dispatch only if the
        # shape proved exact (K=64*9 folds multi-lane here, so it does
        # not) -- the dense decision is attributed to calibration.
        assert np.array_equal(legacy.logits, out.logits)
        counters = out.runtime_counters["conv1_1"]
        expected_steps = 2 if verdict else 0
        assert counters.event_steps == expected_steps
        if not verdict:
            assert counters.dense_calibration_steps == 2

    def test_deep_shape_dispatches_event_through_blocked_fold(self):
        """The same deep shape with blocking on (default) takes the
        event path, bit-identically to its own forced-dense run: both
        kernels share the canonical blocked k-fold."""
        from repro.runtime import resolve_event_backend, resolve_event_block
        from repro.runtime.plan import plan_deployable

        net = build_network(
            "64C3-MP2-40", input_shape=(64, 8, 8), num_classes=10, seed=9
        )
        net.eval()
        deployable = convert(net, FP32)
        plan = plan_deployable(deployable)
        block = resolve_event_block(
            plan.layers[0], resolve_event_backend("auto")
        )
        assert block is not None and block > 0
        images = np.random.default_rng(1).random((3, 64, 8, 8)).astype(np.float32)
        with runtime_overrides(force_path="event"):
            event = deployable.forward(images, 2, RateEncoder(seed=2))
        with runtime_overrides(force_path="dense"):
            dense = deployable.forward(images, 2, RateEncoder(seed=2))
        assert np.array_equal(event.logits, dense.logits)
        assert event.runtime_counters["conv1_1"].event_steps == 2
        assert dense.runtime_counters["conv1_1"].dense_forced_steps == 2

    def test_non_binary_input_detected_and_kept_dense(self, deployable):
        images = np.zeros((4, 3, 8, 8), dtype=np.float32)
        legacy = deployable.forward_legacy(images, 2, _HalfEncoder())
        with runtime_overrides(force_path="event"):
            out = deployable.forward(images, 2, _HalfEncoder())
        assert np.array_equal(legacy.logits, out.logits)
        # 0.5-valued inputs fail the sum==nnz binary check on layer 0.
        assert out.runtime_counters["conv1_1"].event_steps == 0


class TestConfig:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigError, match="dispatch_threshold"):
            RuntimeConfig(dispatch_threshold=1.5)

    def test_invalid_force_path_rejected(self):
        with pytest.raises(ConfigError, match="force_path"):
            RuntimeConfig(force_path="magic")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigError, match="event_backend"):
            RuntimeConfig(event_backend="torch")

    def test_invalid_fuse_cap_rejected(self):
        with pytest.raises(ConfigError, match="max_fused_elements"):
            RuntimeConfig(max_fused_elements=0)

    def test_overrides_restore_previous_config(self):
        before = runtime_config()
        with runtime_overrides(dispatch_threshold=0.5) as active:
            assert active.dispatch_threshold == 0.5
            assert runtime_config() is active
        assert runtime_config() is before
