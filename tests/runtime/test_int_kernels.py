"""Integer datapath: int32-accumulating kernels, probes and dispatch.

Quantized deployables historically dequantized to float32 and ran the
float kernels -- the "int8" runtime was float inference in disguise.
These tests pin the actual integer lowering: the int kernels' mutual
exactness (integer addition is associative, so dense and event int
always agree), the bit-exactness probe that decides whether the integer
path may replace float under ``int_kernels='auto'``, the overflow bound
that gates every integer dispatch, and the per-layer counter
attribution of every int/float decision.
"""

import numpy as np
import pytest

from repro.quant import INT8_P2, convert, quantize_array
from repro.quant.schemes import scheme_by_name
from repro.runtime import (
    InferenceEngine,
    LayerCounters,
    attach_int_lowering,
    calibrate_int_exact,
    dense_conv_int,
    event_conv_int,
    resolve_event_backend,
    runtime_config,
    runtime_overrides,
)
from repro.runtime.kernels import dense_conv
from repro.runtime.refshapes import (
    make_conv_layer_plan,
    make_conv_network_plan,
)
from repro.snn import build_network
from repro.snn.encoding import RateEncoder


def binary_batch(shape, density, seed=7, batch=3):
    rng = np.random.default_rng(seed)
    return (rng.random((batch,) + tuple(shape)) < density).astype(np.float32)


def make_int_layer(cin, h, w, cout, seed=0, pow2=True):
    """A conv LayerPlan whose wmat is the exact dequantization of an
    attached int8 lowering (the invariant ``plan_deployable`` upholds
    for quantized models)."""
    layer = make_conv_layer_plan(cin, h, w, cout, seed=seed)
    scheme = INT8_P2 if pow2 else scheme_by_name("int8")
    q, scale = quantize_array(layer.wmat, scheme)
    wmat = (q.astype(np.float32) * scale.reshape(-1, 1)).astype(np.float32)
    layer.wmat = wmat
    layer.wT = np.ascontiguousarray(wmat.T)
    attach_int_lowering(layer, q, scale)
    return layer


@pytest.fixture(scope="module")
def backend():
    return resolve_event_backend(runtime_config().event_backend)


class TestIntKernels:
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3])
    def test_int_dense_equals_int_event_always(self, backend, density):
        """Integer addition is associative: the two int flavours agree
        bit-for-bit at every density, pow2 scales or not."""
        for pow2 in (True, False):
            layer = make_int_layer(8, 6, 6, 12, seed=3, pow2=pow2)
            x = binary_batch((8, 6, 6), density, seed=5)
            dense = dense_conv_int(layer, x)
            event, updates = event_conv_int(layer, x, backend)
            assert np.array_equal(dense, event)
            assert updates >= 0

    def test_pow2_layer_matches_float_bit_exactly(self, backend):
        layer = make_int_layer(8, 6, 6, 12, seed=4, pow2=True)
        x = binary_batch((8, 6, 6), 0.1, seed=6)
        want = dense_conv(layer, x)
        assert np.array_equal(dense_conv_int(layer, x), want)
        got, _ = event_conv_int(layer, x, backend)
        assert np.array_equal(got, want)

    def test_pow2_layer_probes_exact(self, backend):
        layer = make_int_layer(8, 6, 6, 12, seed=7, pow2=True)
        assert calibrate_int_exact(layer, backend) is True

    def test_arbitrary_scales_fail_the_probe(self, backend):
        """max|w|/qmax scales produce inexact dequantized weights; the
        probe must catch the drift so 'auto' never serves different
        numbers than float."""
        layer = make_int_layer(8, 6, 6, 12, seed=8, pow2=False)
        assert calibrate_int_exact(layer, backend) is False

    def test_no_lowering_means_no_verdict(self, backend):
        layer = make_conv_layer_plan(8, 6, 6, 12, seed=9)
        assert not layer.has_int_lowering
        assert calibrate_int_exact(layer, backend) is False

    def test_deep_shape_probes_exact_at_k2304(self, backend):
        """The deepest VGG9 geometry (K = 256*3*3 = 2304): worst-case
        |acc| = 127 * 2304 < 2^24, so the pow2 integer path stays exact
        at full paper depth."""
        layer = make_int_layer(256, 4, 4, 16, seed=10, pow2=True)
        assert layer.int_bound <= 127 * 2304
        assert layer.int_overflow_ok
        assert calibrate_int_exact(layer, backend) is True


class TestOverflowGate:
    def _overflowing_layer(self):
        """An int16 lowering whose worst-case accumulator exceeds 2^24
        (576 taps * 32767 > 2^24): the bound check must refuse it."""
        layer = make_conv_layer_plan(64, 4, 4, 8, seed=11)
        q = np.full((8, layer.geometry.k), 32767, dtype=np.int32)
        attach_int_lowering(layer, q, np.float32(2.0**-20))
        return layer

    def test_bound_exceeds_limit(self):
        from repro.quant import INT_ACCUMULATION_LIMIT

        layer = self._overflowing_layer()
        assert layer.wq.dtype == np.int16
        assert layer.int_bound > INT_ACCUMULATION_LIMIT
        assert not layer.int_overflow_ok

    def test_probe_refuses_overflowing_layer(self, backend):
        assert calibrate_int_exact(self._overflowing_layer(), backend) is False

    def test_engine_attributes_overflow_fallback(self):
        """Even under forced integer mode the engine must keep an
        overflow-risky layer on float -- and say so in the counters."""
        plan = make_conv_network_plan(64, 4, 4, 8, seed=11)
        conv = plan.layers[0]
        q = np.full((8, conv.geometry.k), 32767, dtype=np.int32)
        attach_int_lowering(conv, q, np.float32(2.0**-20))
        spikes = binary_batch((64, 4, 4), 0.02, seed=12, batch=2)
        with runtime_overrides(int_kernels="on", dispatch_policy="density"):
            out = InferenceEngine(plan).run(spikes)
        counters = out.counters[conv.name]
        assert counters.int_dense_steps == 0
        assert counters.int_event_steps == 0
        assert counters.float_overflow_steps > 0


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def int_model(self):
        net = build_network(
            "8C3-MP2-16C3-MP2-40",
            input_shape=(3, 8, 8),
            num_classes=10,
            seed=77,
        )
        net.eval()
        return convert(net, INT8_P2)

    @pytest.fixture(scope="class")
    def arb_model(self):
        net = build_network(
            "8C3-MP2-16C3-MP2-40",
            input_shape=(3, 8, 8),
            num_classes=10,
            seed=77,
        )
        net.eval()
        return convert(net, scheme_by_name("int8"))

    @pytest.fixture(scope="class")
    def images(self):
        rng = np.random.default_rng(13)
        # Faint images -> sparse rate-coded trains -> event-eligible
        # steps under the density policy.
        return (rng.random((4, 3, 8, 8)) * 0.1).astype(np.float32)

    def test_auto_int_path_is_bit_exact_and_attributed(
        self, int_model, images
    ):
        """The headline fix: an int8(p2) deployable actually executes
        integer event steps, and its logits still match the float path
        bit for bit."""
        encoder = RateEncoder(seed=0)
        with runtime_overrides(int_kernels="off"):
            want = int_model.forward(images, 6, encoder)
        with runtime_overrides(
            int_kernels="auto",
            dispatch_policy="density",
            dispatch_threshold=0.25,
        ):
            got = int_model.forward(images, 6, encoder)
        assert np.array_equal(got.logits, want.logits)
        int_events = sum(
            c.int_event_steps for c in got.runtime_counters.values()
        )
        int_updates = sum(
            c.int_event_updates for c in got.runtime_counters.values()
        )
        assert int_events > 0
        assert int_updates > 0

    def test_arbitrary_scales_fall_back_to_float_with_attribution(
        self, arb_model, images
    ):
        """Auto mode on non-pow2 int8: the probe fails, every step runs
        float, and the counters attribute the reason."""
        encoder = RateEncoder(seed=0)
        with runtime_overrides(int_kernels="off"):
            want = arb_model.forward(images, 4, encoder)
        with runtime_overrides(
            int_kernels="auto",
            dispatch_policy="density",
            dispatch_threshold=0.25,
        ):
            got = arb_model.forward(images, 4, encoder)
        assert np.array_equal(got.logits, want.logits)
        counters = got.runtime_counters
        assert sum(c.int_event_steps for c in counters.values()) == 0
        assert sum(c.int_dense_steps for c in counters.values()) == 0
        assert sum(c.float_exactness_steps for c in counters.values()) > 0

    def test_off_mode_never_runs_int(self, int_model, images):
        with runtime_overrides(int_kernels="off", dispatch_policy="density"):
            out = int_model.forward(images, 4, RateEncoder(seed=0))
        counters = out.runtime_counters
        assert sum(c.int_event_steps for c in counters.values()) == 0
        assert sum(c.int_dense_steps for c in counters.values()) == 0

    def test_forced_int_is_deterministic_across_paths(
        self, arb_model, images
    ):
        """int_kernels='on' forces the integer path even where it
        differs from float -- but integer associativity makes the result
        identical at every dispatch split (dense vs event vs routed)."""
        encoder = RateEncoder(seed=0)
        outs = []
        for overrides in (
            dict(int_kernels="on", force_path="dense"),
            dict(int_kernels="on", force_path="event"),
            dict(int_kernels="on", dispatch_policy="density"),
        ):
            with runtime_overrides(**overrides):
                outs.append(arb_model.forward(images, 4, encoder))
        for other in outs[1:]:
            assert np.array_equal(outs[0].logits, other.logits)
        forced = outs[1].runtime_counters
        assert sum(c.int_event_steps for c in forced.values()) > 0

    def test_forced_int_batch_split_invariance(self, arb_model, images):
        """Shard-merge determinism survives on the integer path: half
        batches concatenate to the full-batch logits exactly."""
        encoder = RateEncoder(seed=0)
        with runtime_overrides(int_kernels="on", dispatch_policy="density"):
            whole = arb_model.forward(images, 4, encoder).logits
            lo = arb_model.forward(images[:2], 4, encoder).logits
            hi = arb_model.forward(
                images[2:], 4, encoder.for_samples(2)
            ).logits
        assert np.array_equal(whole, np.concatenate([lo, hi]))


class TestCounters:
    def test_fallback_reasons_map_to_fields(self):
        c = LayerCounters()
        c.count_float_fallback("exactness", 2)
        c.count_float_fallback("overflow")
        c.count_float_fallback("cost", 3)
        assert c.float_exactness_steps == 2
        assert c.float_overflow_steps == 1
        assert c.float_cost_steps == 3

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            LayerCounters().count_float_fallback("vibes")

    def test_as_dict_and_merge_carry_int_fields(self):
        a = LayerCounters()
        a.int_dense_steps = 1
        a.int_event_steps = 2
        a.int_event_updates = 30
        a.float_overflow_steps = 1
        b = LayerCounters()
        b.int_event_steps = 3
        b.float_exactness_steps = 4
        a.merge(b)
        d = a.as_dict()
        assert d["int_dense_steps"] == 1
        assert d["int_event_steps"] == 5
        assert d["int_event_updates"] == 30
        assert d["float_overflow_steps"] == 1
        assert d["float_exactness_steps"] == 4
