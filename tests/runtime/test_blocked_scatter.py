"""Bit-identity of the canonical blocked k-fold across block sizes.

The invariant under test (see :mod:`repro.runtime.kernels`): for every
``(shape, block)`` configuration that calibration *accepts*, the blocked
dense kernel and the blocked event kernel are bit-identical at any
density -- they compute the same per-block partial sums and fold them in
the same ascending block order. Configurations calibration *rejects*
(block 512 at deep shapes: the within-block GEMM folds multi-lane here)
must actually mismatch, otherwise the probe is vacuous; and the blocked
fold must stay numerically equivalent (allclose, last-ulp differences
only) to the unblocked dense kernel everywhere, becoming bit-identical
where no rounding is involved at all (empty input: both reduce to the
bias broadcast).

Covers block sizes {32, 128, 512} x densities {0.0, 0.02, 0.3} on a
deep-VGG9 shape with K >= 500 plus a shallow control, both scatter
backends, the BufferPool path, and fused-batch chunking.
"""

import numpy as np
import pytest

from repro.runtime import InferenceEngine, runtime_overrides
from repro.runtime.kernels import (
    calibrate_block_exact,
    dense_conv,
    event_conv,
    event_conv_blocked,
    resolve_event_backend,
    resolve_event_block,
)
from repro.runtime.kernels import BufferPool, _sparse
from repro.runtime.refshapes import (
    DEEP_VGG9_SHAPES,
    make_conv_layer_plan as make_layer,
    make_conv_network_plan,
)

BLOCK_SIZES = (32, 128, 512)
DENSITIES = (0.0, 0.02, 0.3)

#: (cin, height, width, cout): a deep-VGG9 conv2_2-scale shape (K=576)
#: and a shallow control (K=144) whose unblocked fold is already exact.
SHAPES = [DEEP_VGG9_SHAPES[0], (16, 16, 16, 32)]

BACKENDS = ["scipy", "numpy"] if _sparse is not None else ["numpy"]


def binary_batch(shape, density, seed=7, batch=3):
    rng = np.random.default_rng(seed)
    return (rng.random((batch,) + shape) < density).astype(np.float32)


class TestBlockedKernelBitIdentity:
    @pytest.mark.parametrize("cin,height,width,cout", SHAPES)
    @pytest.mark.parametrize("block", BLOCK_SIZES)
    @pytest.mark.parametrize("density", DENSITIES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_blocked_dense_vs_blocked_event(
        self, cin, height, width, cout, block, density, backend
    ):
        """Calibration-accepted blocks: bit-identity. Rejected blocks:
        a real mismatch (the probe discriminates, it does not rubber-
        stamp) -- though never beyond last-ulp distance."""
        layer = make_layer(cin, height, width, cout)
        x = binary_batch((cin, height, width), density)
        want = dense_conv(layer, x, kblock=block)
        got, updates = event_conv_blocked(layer, x, backend, block)
        accepted = calibrate_block_exact(layer, backend, block)
        if accepted or density == 0.0:
            # Zero density: every fold of an empty input is the exact
            # bias broadcast, accepted or not.
            assert np.array_equal(got, want)
        else:
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)
        if density == 0.0:
            assert updates == 0
        else:
            assert updates > 0

    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_deep_shape_acceptance_matches_environment(self, block):
        """K=576: blocks up to 256 fold single-lane here, 512 does not.
        If this environment ever changes, calibration must follow it --
        this test documents the current verdict set explicitly."""
        layer = make_layer(64, 16, 16, 128)
        backend = resolve_event_backend("auto")
        assert calibrate_block_exact(layer, backend, block) is (block < 512)

    @pytest.mark.parametrize("cin,height,width,cout", SHAPES)
    @pytest.mark.parametrize("block", BLOCK_SIZES)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_blocked_dense_vs_unblocked_dense(
        self, cin, height, width, cout, block, density
    ):
        """The blocked fold is the same sum in a different association
        order: numerically equivalent everywhere, bit-identical wherever
        no rounding happens (empty input), and bit-identical outright
        when one block spans all of k."""
        layer = make_layer(cin, height, width, cout)
        x = binary_batch((cin, height, width), density)
        want = dense_conv(layer, x)
        got = dense_conv(layer, x, kblock=block)
        if density == 0.0 or block >= layer.geometry.k:
            assert np.array_equal(got, want)
        else:
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_unblocked_event_matches_single_block(self):
        """A block covering all of k degenerates to the unblocked
        scatter -- same contributions, same order, same bits."""
        layer = make_layer(16, 16, 16, 32)
        backend = resolve_event_backend("auto")
        x = binary_batch((16, 16, 16), 0.3)
        whole, n_whole = event_conv(layer, x, backend)
        one_block, n_block = event_conv_blocked(
            layer, x, backend, layer.geometry.k
        )
        assert n_whole == n_block
        assert np.array_equal(whole, one_block)

    def test_buffer_pool_and_chunking_bit_exact(self):
        """The pooled-buffer and fused-batch-chunked variants of the
        blocked dense kernel must not perturb a bit."""
        layer = make_layer(64, 16, 16, 128)
        x = binary_batch((64, 16, 16), 0.02, batch=5)
        want = dense_conv(layer, x, kblock=128)
        pooled = dense_conv(layer, x, buffers=BufferPool(), kblock=128)
        chunked = dense_conv(
            layer, x, max_elements=layer.geometry.k * layer.geometry.p,
            kblock=128,
        )
        assert np.array_equal(pooled, want)
        assert np.array_equal(chunked, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_on_blocked_path(self, backend):
        """Both scatter backends implement the same ascending-k fold, so
        any calibrated backend must reproduce the blocked dense result."""
        layer = make_layer(64, 16, 16, 128)
        block = resolve_event_block(layer, backend)
        assert block is not None and block > 0
        x = binary_batch((64, 16, 16), 0.02)
        want = dense_conv(layer, x, kblock=block)
        got, _ = event_conv_blocked(layer, x, backend, block)
        assert np.array_equal(got, want)


class TestEngineRoutesDeepShapesEvent:
    """The acceptance claim, end to end: a deep-VGG9 shape at paper
    densities (<= 0.05) runs on the event path bit-exactly."""

    @pytest.fixture(scope="class")
    def plan(self):
        return make_conv_network_plan(64, 16, 16, 128, seed=3)

    @pytest.mark.parametrize("density", [0.005, 0.02, 0.04])
    def test_sparse_steps_route_event_and_match_dense(self, plan, density):
        """Eligibility routing (density policy: deterministic): every
        paper-density timestep of the deep shape takes the event path,
        and the result matches the forced-dense run bit for bit."""
        spikes = binary_batch((3, 64, 16, 16), density, seed=11, batch=2)
        with runtime_overrides(force_path="dense"):
            dense = InferenceEngine(plan).run(spikes)
        with runtime_overrides(dispatch_policy="density"):
            routed = InferenceEngine(plan).run(spikes)
        assert np.array_equal(routed.accumulated, dense.accumulated)
        counters = routed.counters[plan.layers[0].name]
        # Every sparse timestep left the dense kernel behind (empty
        # steps count as event: they take the bias shortcut).
        assert counters.dense_steps == 0
        assert counters.event_steps == 2

    def test_cost_model_vetoes_event_on_dense_input(self, plan):
        """Cost routing where the margin is decisive (>10x): at 40%
        density the scatter would accumulate ~100k updates against a
        ~1ms GEMM, so the model must route dense -- and the counters
        must attribute the decision to the cost model, not the
        threshold (raised to keep the step eligible)."""
        spikes = binary_batch((3, 64, 16, 16), 0.4, seed=17, batch=2)
        with runtime_overrides(dispatch_threshold=0.5):
            routed = InferenceEngine(plan).run(spikes)
        counters = routed.counters[plan.layers[0].name]
        assert counters.dense_steps == 2
        assert counters.dense_cost_steps == 2
        # Dispatch never changes results: same bits as forced event.
        with runtime_overrides(force_path="event"):
            forced = InferenceEngine(plan).run(spikes)
        assert np.array_equal(routed.accumulated, forced.accumulated)

    def test_forced_paths_agree_with_cost_routing(self, plan):
        spikes = binary_batch((3, 64, 16, 16), 0.02, seed=13, batch=2)
        results = []
        for overrides in (
            dict(force_path="event"),
            dict(force_path="dense"),
            dict(dispatch_policy="density"),
            dict(),
        ):
            with runtime_overrides(**overrides):
                results.append(InferenceEngine(plan).run(spikes).accumulated)
        for other in results[1:]:
            assert np.array_equal(results[0], other)
