"""Bit-exactness of the fused runtime against the legacy loops.

Every test asserts *exact* array equality: the runtime is a pure
performance layer and must not perturb a single bit of logits, spike
trains, statistics or simulator cycle counts.
"""

import numpy as np
import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.quant import FP32, INT4, convert
from repro.quant.schemes import INT8
from repro.runtime import runtime_overrides
from repro.snn import build_network
from repro.snn.encoding import RateEncoder
from repro.tensor import no_grad


@pytest.fixture(scope="module")
def seeded_network():
    """A seeded, untrained conv+fc network (weights random but fixed)."""
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=123
    )
    net.eval()
    return net


@pytest.fixture(scope="module")
def seeded_deployable(seeded_network):
    return convert(seeded_network, FP32)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(99)
    return rng.random((12, 3, 8, 8)).astype(np.float32)


def assert_outputs_equal(legacy, runtime):
    assert np.array_equal(legacy.logits, runtime.logits)
    assert legacy.input_spike_totals == runtime.input_spike_totals
    assert legacy.stats.per_layer == runtime.stats.per_layer
    assert legacy.stats.per_layer_timestep == runtime.stats.per_layer_timestep
    if legacy.spike_trains is not None:
        assert set(legacy.spike_trains) == set(runtime.spike_trains)
        for name, trains in legacy.spike_trains.items():
            for t, train in enumerate(trains):
                assert np.array_equal(train, runtime.spike_trains[name][t]), (
                    f"train mismatch at layer {name}, t={t}"
                )


class TestDeployableEquivalence:
    def test_dense_dispatch_bitexact(self, seeded_deployable, images):
        legacy = seeded_deployable.forward_legacy(images, 2, record=True)
        runtime = seeded_deployable.forward(images, 2, record=True)
        assert_outputs_equal(legacy, runtime)

    def test_forced_event_path_bitexact(self, seeded_deployable, images):
        legacy = seeded_deployable.forward_legacy(images, 2, record=True)
        with runtime_overrides(force_path="event"):
            runtime = seeded_deployable.forward(images, 2, record=True)
        assert_outputs_equal(legacy, runtime)
        counters = runtime.runtime_counters
        # Non-input conv layers see binary spikes and must have gone
        # event; FC layers always stay dense (see kernels module docs).
        assert counters["conv2_1"].event_steps == 2
        assert counters["conv2_1"].dense_steps == 0
        assert counters["fc1"].dense_steps == 2
        assert counters["fc1"].event_steps == 0

    def test_forced_dense_path_bitexact(self, seeded_deployable, images):
        legacy = seeded_deployable.forward_legacy(images, 2)
        with runtime_overrides(force_path="dense"):
            runtime = seeded_deployable.forward(images, 2)
        assert np.array_equal(legacy.logits, runtime.logits)

    def test_numpy_event_backend_bitexact(self, seeded_deployable, images):
        legacy = seeded_deployable.forward_legacy(images, 2)
        with runtime_overrides(force_path="event", event_backend="numpy"):
            runtime = seeded_deployable.forward(images, 2)
        assert np.array_equal(legacy.logits, runtime.logits)

    def test_rate_coding_without_dense_input_core(self, seeded_deployable, images):
        legacy = seeded_deployable.forward_legacy(
            images, 4, RateEncoder(seed=5), record=True
        )
        with runtime_overrides(force_path="event"):
            runtime = seeded_deployable.forward(
                images, 4, RateEncoder(seed=5), record=True
            )
        assert_outputs_equal(legacy, runtime)
        # Rate-coded input is binary: even the first layer may go event.
        assert runtime.runtime_counters["conv1_1"].event_steps == 4

    def test_quantized_network_bitexact(self, seeded_network, images):
        for scheme in (INT4, INT8):
            deployable = convert(seeded_network, scheme)
            legacy = deployable.forward_legacy(images, 2)
            runtime = deployable.forward(images, 2)
            assert np.array_equal(legacy.logits, runtime.logits)
            with runtime_overrides(force_path="event"):
                event = deployable.forward(images, 2)
            assert np.array_equal(legacy.logits, event.logits)

    def test_time_chunking_bitexact(self, seeded_deployable, images):
        legacy = seeded_deployable.forward_legacy(images, 4, RateEncoder(seed=1))
        with runtime_overrides(max_fused_elements=1024):
            chunked = seeded_deployable.forward(images, 4, RateEncoder(seed=1))
        assert np.array_equal(legacy.logits, chunked.logits)

    def test_stacked_trains_match_lists(self, seeded_deployable, images):
        out = seeded_deployable.forward(images, 2, record=True)
        assert out.spike_trains_stacked is not None
        for name, stacked in out.spike_trains_stacked.items():
            assert stacked.shape[0] == 2
            for t in range(2):
                assert np.array_equal(stacked[t], out.spike_trains[name][t])

    def test_recorded_trains_do_not_alias_input(self, seeded_deployable, images):
        """Recorded trains must be safe against callers mutating images
        in place afterwards (the legacy loop copied every frame)."""
        out = seeded_deployable.forward(images, 2, record=True)
        assert not np.shares_memory(out.spike_trains_stacked["conv1_1"], images)
        before = out.spike_trains_stacked["conv1_1"].copy()
        corrupted = images.copy()
        out2 = seeded_deployable.forward(corrupted, 2, record=True)
        corrupted += 1.0  # caller reuses its batch buffer
        assert np.array_equal(out2.spike_trains_stacked["conv1_1"], before)

    def test_runtime_disabled_falls_back(self, seeded_deployable, images):
        with runtime_overrides(enabled=False):
            out = seeded_deployable.forward(images, 2, record=True)
        assert out.spike_trains_stacked is None  # legacy path marker
        assert out.spike_trains is not None


class TestSpikingNetworkEquivalence:
    def test_eval_forward_bitexact(self, seeded_network, images):
        with no_grad():
            runtime = seeded_network.forward(images, 2, record=True)
            with runtime_overrides(enabled=False):
                legacy = seeded_network.forward(images, 2, record=True)
        assert np.array_equal(legacy.logits.data, runtime.logits.data)
        assert np.array_equal(
            legacy.output_spike_counts, runtime.output_spike_counts
        )
        assert legacy.input_spike_totals == runtime.input_spike_totals
        assert legacy.stats.per_layer == runtime.stats.per_layer
        for name, trains in legacy.spike_trains.items():
            for t, train in enumerate(trains):
                assert np.array_equal(train, runtime.spike_trains[name][t])

    def test_training_mode_keeps_legacy_tape(self, seeded_network, images):
        seeded_network.train()
        try:
            out = seeded_network.forward(images[:4], 2)
            # Legacy autograd path: logits must be on the tape.
            assert out.logits.requires_grad
        finally:
            seeded_network.eval()

    def test_grad_enabled_keeps_legacy_tape(self, seeded_network, images):
        out = seeded_network.forward(images[:4], 2)
        assert out.logits.requires_grad

    def test_predict_matches_legacy_predict(self, seeded_network, images):
        runtime_pred = seeded_network.predict(images, 2)
        with runtime_overrides(enabled=False):
            legacy_pred = seeded_network.predict(images, 2)
        assert np.array_equal(runtime_pred, legacy_pred)

    def test_plan_cache_invalidated_by_weight_updates(self, images):
        """A train()/eval() cycle that mutates weights must not leave the
        runtime serving a stale cached plan."""
        net = build_network(
            "6C3-MP2-30", input_shape=(3, 8, 8), num_classes=10, seed=17
        )
        net.eval()
        with no_grad():
            first = net.forward(images, 2)
        net.train()
        net.stages[0].layer.weight.data = (
            net.stages[0].layer.weight.data + 0.25
        )
        net.eval()
        with no_grad():
            runtime = net.forward(images, 2)
            with runtime_overrides(enabled=False):
                legacy = net.forward(images, 2)
        assert np.array_equal(runtime.logits.data, legacy.logits.data)
        assert not np.array_equal(runtime.logits.data, first.logits.data)

    def test_qat_network_bitexact(self, images):
        from repro.quant.qat import prepare_qat

        net = build_network(
            "6C3-MP2-30", input_shape=(3, 8, 8), num_classes=10, seed=7
        )
        prepare_qat(net, INT4)
        net.eval()
        with no_grad():
            runtime = net.forward(images, 2)
            with runtime_overrides(enabled=False):
                legacy = net.forward(images, 2)
        assert np.array_equal(legacy.logits.data, runtime.logits.data)


class TestSimulatorEquivalence:
    @pytest.fixture(scope="class")
    def simulator(self, seeded_deployable):
        config = AcceleratorConfig(
            name="eq", allocation=(1, 2, 2), scheme=FP32
        )
        return HybridSimulator(seeded_deployable, config)

    def test_cycle_counts_bitexact(self, simulator, images):
        runtime = simulator.run(images, 2)
        with runtime_overrides(enabled=False):
            legacy = simulator.run(images, 2)
        for got, want in zip(runtime.layers, legacy.layers):
            assert got.cycles == want.cycles
            assert got.compression_cycles == want.compression_cycles
            assert got.accumulation_cycles == want.accumulation_cycles
            assert got.activation_cycles == want.activation_cycles
            assert got.input_events == want.input_events
            assert got.output_spikes == want.output_spikes
        assert runtime.latency_ms == legacy.latency_ms
        assert runtime.energy_mj == legacy.energy_mj
        assert np.array_equal(runtime.logits, legacy.logits)

    def test_cycle_counts_bitexact_event_path(self, simulator, images):
        with runtime_overrides(enabled=False):
            legacy = simulator.run(images, 2)
        with runtime_overrides(force_path="event"):
            event = simulator.run(images, 2)
        for got, want in zip(event.layers, legacy.layers):
            assert got.cycles == want.cycles
        assert event.latency_ms == legacy.latency_ms

    def test_dispatch_counters_in_notes(self, simulator, images):
        report = simulator.run(images, 2)
        assert any("runtime dispatch" in note for note in report.notes)
