"""Fold-calibration coverage for deep-VGG9 conv shapes (K >= 500).

Regression guard for ROADMAP's blocked-scatter follow-on: large-K GEMMs
use a multi-lane BLAS fold in this environment, so the scatter kernel's
sequential fold cannot match bit-for-bit -- those shapes must fail
calibration, be flagged in the plan report, and stay on the dense path
even when the event path is forced. If a future blocked scatter kernel
lands and these shapes start calibrating exact, this file is the place
that tells you the dense fallback is no longer taken.
"""

import numpy as np
import pytest

from repro.runtime import plan_report, runtime_overrides
from repro.runtime.kernels import (
    calibrate_event_exact,
    dense_conv,
    event_conv,
    resolve_event_backend,
)
from repro.runtime.plan import LayerPlan, conv_geometry

#: Deep-VGG9 (CIFAR scale) conv input shapes with K = Cin * 3 * 3 >= 500.
DEEP_VGG9_SHAPES = [
    # (cin, height, width, cout) -- conv2_2, conv3_1, conv3_2/3_3
    (64, 16, 16, 128),
    (128, 8, 8, 256),
    (256, 8, 8, 256),
]


def make_conv_plan(cin, height, width, cout, seed=0):
    geometry = conv_geometry(cin, height, width, 3, 1)
    rng = np.random.default_rng(seed)
    wmat = rng.standard_normal((cout, geometry.k)).astype(np.float32)
    return LayerPlan(
        name=f"conv{cin}x{height}",
        kind="conv",
        wmat=wmat,
        wT=np.ascontiguousarray(wmat.T),
        bias=rng.standard_normal(cout).astype(np.float32),
        input_shape=(cin, height, width),
        output_shape=(cout, height, width),
        geometry=geometry,
    )


class TestDeepShapesFallBackDense:
    @pytest.mark.parametrize("cin,height,width,cout", DEEP_VGG9_SHAPES)
    def test_large_k_fails_calibration(self, cin, height, width, cout):
        layer = make_conv_plan(cin, height, width, cout)
        assert layer.geometry.k >= 500
        backend = resolve_event_backend("auto")
        assert calibrate_event_exact(layer, backend) is False

    def test_small_k_still_calibrates_exact(self):
        # Control: the guard must not be vacuously green because the
        # whole event path broke.
        layer = make_conv_plan(16, 16, 16, 32)
        assert layer.geometry.k < 500
        backend = resolve_event_backend("auto")
        assert calibrate_event_exact(layer, backend) is True


class TestPlanReportFlagsFallback:
    def test_dense_fallback_flagged(self):
        from repro.runtime.plan import NetworkPlan

        small = make_conv_plan(16, 16, 16, 32, seed=1)
        deep = make_conv_plan(64, 16, 16, 128, seed=2)
        plan = NetworkPlan(
            layers=[small, deep],
            beta=0.5,
            threshold=1.0,
            num_classes=10,
            population_group=1,
            spike_rule="threshold",
            source="deployable",
        )
        rows = {row["name"]: row for row in plan_report(plan)}
        assert rows[small.name]["event_exact"] is True
        assert rows[small.name]["path"] == "event-eligible"
        assert rows[deep.name]["event_exact"] is False
        assert "dense-fallback" in rows[deep.name]["path"]
        assert rows[deep.name]["k"] == 64 * 9


class TestDispatcherHonoursFallback:
    def test_forced_event_path_stays_dense_and_exact(self):
        """Even under force_path='event' an uncalibrated shape must run
        dense -- and therefore stay bit-identical to the dense kernel."""
        from repro.runtime import InferenceEngine
        from repro.runtime.plan import NetworkPlan

        deep = make_conv_plan(64, 8, 8, 64, seed=3)
        assert deep.geometry.k >= 500
        rng_fc = np.random.default_rng(8)
        fc_w = rng_fc.standard_normal((8, 64 * 8 * 8)).astype(np.float32)
        head = LayerPlan(
            name="fc",
            kind="fc",
            wmat=fc_w,
            wT=np.ascontiguousarray(fc_w.T),
            bias=np.zeros(8, dtype=np.float32),
            input_shape=(64, 8, 8),
            output_shape=(8,),
        )
        plan = NetworkPlan(
            layers=[deep, head],
            beta=0.5,
            threshold=1.0,
            num_classes=8,
            population_group=1,
            spike_rule="threshold",
            source="deployable",
        )
        rng = np.random.default_rng(7)
        spikes = (rng.random((2, 3, 64, 8, 8)) < 0.05).astype(np.float32)
        with runtime_overrides(force_path="event"):
            result = InferenceEngine(plan).run(spikes)
        counters = result.counters[deep.name]
        assert counters.event_steps == 0
        assert counters.dense_steps == 2

    def test_event_kernel_differs_only_in_last_ulp(self):
        """Document *why* the fallback exists: the scatter result is
        numerically close (same math) but not bit-identical (different
        fold), which is exactly what calibration detects."""
        layer = make_conv_plan(64, 8, 8, 64, seed=4)
        backend = resolve_event_backend("auto")
        rng = np.random.default_rng(11)
        probe = (rng.random((2, 64, 8, 8)) < 0.1).astype(np.float32)
        want = dense_conv(layer, probe)
        got, _ = event_conv(layer, probe, backend)
        assert not np.array_equal(got, want)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)
