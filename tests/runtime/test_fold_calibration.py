"""Fold-calibration coverage for deep-VGG9 conv shapes (K >= 500).

Historically this file guarded the *dense fallback*: large-K GEMMs use a
multi-lane BLAS fold in this environment, so the unblocked scatter
kernel cannot match bit-for-bit and those shapes had to stay dense. The
blocked k-fold (PR 4) flips the contract: every deep shape must now
resolve to a block size at which the blocked dense and blocked event
kernels are calibrated bit-exact, and the dispatcher must route it to
the event path. What remains guarded is the *rejection* machinery --
a deliberately wrong fold order (the unblocked sequential fold at these
shapes, or a block too large for a single-lane within-block GEMM) must
still fail its probe, because that discrimination is what makes the
accepted configurations trustworthy.
"""

import numpy as np
import pytest

from repro.runtime import plan_report, runtime_overrides
from repro.runtime.kernels import (
    KBLOCK_CANDIDATES,
    calibrate_block_exact,
    calibrate_event_exact,
    dense_conv,
    event_conv,
    event_conv_blocked,
    resolve_event_backend,
    resolve_event_block,
)
from repro.runtime.plan import LayerPlan
from repro.runtime.refshapes import (
    DEEP_VGG9_SHAPES,
    make_conv_layer_plan as make_conv_plan,
)


class TestDeepShapesCalibrateBlocked:
    @pytest.mark.parametrize("cin,height,width,cout", DEEP_VGG9_SHAPES)
    def test_blocked_fold_calibrates_exact(self, cin, height, width, cout):
        """Every deep-VGG9 shape must resolve to a positive block size
        whose blocked kernels are bit-identical."""
        layer = make_conv_plan(cin, height, width, cout)
        assert layer.geometry.k >= 500
        backend = resolve_event_backend("auto")
        block = resolve_event_block(layer, backend)
        assert block is not None and block > 0
        assert block in KBLOCK_CANDIDATES
        assert calibrate_block_exact(layer, backend, block) is True

    @pytest.mark.parametrize("cin,height,width,cout", DEEP_VGG9_SHAPES)
    def test_resolved_block_kernels_bit_identical(
        self, cin, height, width, cout
    ):
        layer = make_conv_plan(cin, height, width, cout)
        backend = resolve_event_backend("auto")
        block = resolve_event_block(layer, backend)
        rng = np.random.default_rng(29)
        probe = (
            rng.random((2, cin, height, width)) < 0.05
        ).astype(np.float32)
        want = dense_conv(layer, probe, kblock=block)
        got, updates = event_conv_blocked(layer, probe, backend, block)
        assert updates > 0
        assert np.array_equal(got, want)

    def test_small_k_still_calibrates_unblocked(self):
        # Control: shallow shapes keep the plain path (resolution 0), so
        # the blocked machinery cannot have regressed the common case.
        layer = make_conv_plan(16, 16, 16, 32)
        assert layer.geometry.k < 500
        backend = resolve_event_backend("auto")
        assert calibrate_event_exact(layer, backend) is True
        assert resolve_event_block(layer, backend) == 0


class TestWrongFoldOrdersRejected:
    """The discrimination guard: calibration must keep rejecting folds
    that do not match this environment's BLAS."""

    @pytest.mark.parametrize("cin,height,width,cout", DEEP_VGG9_SHAPES)
    def test_unblocked_fold_still_rejected_at_depth(
        self, cin, height, width, cout
    ):
        """The unblocked sequential fold *is* a wrong fold order at
        K >= 500 here -- if this starts passing, the dense/blocked split
        no longer reflects the environment and every verdict is suspect."""
        layer = make_conv_plan(cin, height, width, cout)
        backend = resolve_event_backend("auto")
        assert calibrate_event_exact(layer, backend) is False

    def test_oversized_block_rejected(self):
        """A block too large for a single-lane within-block GEMM must
        fail its probe (512 folds multi-lane in this environment)."""
        layer = make_conv_plan(64, 16, 16, 128)
        backend = resolve_event_backend("auto")
        assert calibrate_block_exact(layer, backend, 512) is False

    def test_wrong_block_fold_order_mismatches(self):
        """Folding the per-block partials in descending instead of the
        canonical ascending order changes the result -- the probe's
        sensitivity is real, not vacuous."""
        layer = make_conv_plan(64, 16, 16, 128)
        backend = resolve_event_backend("auto")
        block = resolve_event_block(layer, backend)
        tables = layer.block_tables(block)
        rng = np.random.default_rng(31)
        probe = (rng.random((2, 64, 16, 16)) < 0.3).astype(np.float32)
        want = dense_conv(layer, probe, kblock=block)
        # Reconstruct the event result with the block partials folded in
        # reverse order: isolate each block's contribution by zeroing
        # the others' weights, then sum descending.
        partials = []
        for i in range(tables.nblocks):
            masked = layer.wmat.copy()
            masked[:, : tables.edges[i]] = 0.0
            masked[:, tables.edges[i + 1]:] = 0.0
            lone = LayerPlan(
                name="lone",
                kind="conv",
                wmat=masked,
                wT=np.ascontiguousarray(masked.T),
                bias=np.zeros_like(layer.bias),
                input_shape=layer.input_shape,
                output_shape=layer.output_shape,
                geometry=layer.geometry,
            )
            partial, _ = event_conv_blocked(lone, probe, backend, block)
            partials.append(partial)
        wrong = partials[-1]
        for partial in reversed(partials[:-1]):
            wrong = wrong + partial
        wrong = wrong + layer.bias.reshape(1, -1, 1, 1)
        assert not np.array_equal(wrong, want)
        np.testing.assert_allclose(wrong, want, rtol=1e-4, atol=1e-4)

    def test_event_kernel_differs_only_in_last_ulp(self):
        """Document *why* the unblocked fallback exists: the unblocked
        scatter result is numerically close (same math) but not
        bit-identical (different fold) at deep shapes -- exactly what
        calibration detects."""
        layer = make_conv_plan(64, 8, 8, 64, seed=4)
        backend = resolve_event_backend("auto")
        rng = np.random.default_rng(11)
        probe = (rng.random((2, 64, 8, 8)) < 0.1).astype(np.float32)
        want = dense_conv(layer, probe)
        got, _ = event_conv(layer, probe, backend)
        assert not np.array_equal(got, want)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)


class TestPlanReportExplainsResolution:
    def test_blocked_and_fallback_paths_flagged(self):
        from repro.runtime.plan import NetworkPlan

        small = make_conv_plan(16, 16, 16, 32, seed=1)
        deep = make_conv_plan(64, 16, 16, 128, seed=2)
        plan = NetworkPlan(
            layers=[small, deep],
            beta=0.5,
            threshold=1.0,
            num_classes=10,
            population_group=1,
            spike_rule="threshold",
            source="deployable",
        )
        rows = {row["name"]: row for row in plan_report(plan)}
        assert rows[small.name]["event_exact"] is True
        assert rows[small.name]["k_block"] == 0
        assert rows[small.name]["path"] == "event-eligible"
        # The deep shape fails the unblocked probe but is event-eligible
        # through its resolved block, and the report says which.
        assert rows[deep.name]["event_exact"] is False
        assert rows[deep.name]["k_block"] > 0
        assert "blocked fold" in rows[deep.name]["path"]
        assert rows[deep.name]["k"] == 64 * 9

    def test_blocking_disabled_restores_dense_fallback_flag(self):
        from repro.runtime.plan import NetworkPlan

        deep = make_conv_plan(64, 16, 16, 128, seed=2)
        plan = NetworkPlan(
            layers=[deep],
            beta=0.5,
            threshold=1.0,
            num_classes=10,
            population_group=1,
            spike_rule="threshold",
            source="deployable",
        )
        with runtime_overrides(event_kblock=0):
            rows = {row["name"]: row for row in plan_report(plan)}
        assert rows[deep.name]["k_block"] is None
        assert "dense-fallback (calibration" in rows[deep.name]["path"]


class TestDispatcherHonoursResolution:
    def test_forced_event_path_blocked_and_exact(self):
        """Under force_path='event' a deep shape now runs the blocked
        event kernel -- and must stay bit-identical to its forced-dense
        twin, which shares the blocked fold."""
        from repro.runtime import InferenceEngine
        from repro.runtime.plan import NetworkPlan

        deep = make_conv_plan(64, 8, 8, 64, seed=3)
        assert deep.geometry.k >= 500
        rng_fc = np.random.default_rng(8)
        fc_w = rng_fc.standard_normal((8, 64 * 8 * 8)).astype(np.float32)
        head = LayerPlan(
            name="fc",
            kind="fc",
            wmat=fc_w,
            wT=np.ascontiguousarray(fc_w.T),
            bias=np.zeros(8, dtype=np.float32),
            input_shape=(64, 8, 8),
            output_shape=(8,),
        )
        plan = NetworkPlan(
            layers=[deep, head],
            beta=0.5,
            threshold=1.0,
            num_classes=8,
            population_group=1,
            spike_rule="threshold",
            source="deployable",
        )
        rng = np.random.default_rng(7)
        spikes = (rng.random((2, 3, 64, 8, 8)) < 0.05).astype(np.float32)
        with runtime_overrides(force_path="event"):
            event = InferenceEngine(plan).run(spikes)
        with runtime_overrides(force_path="dense"):
            dense = InferenceEngine(plan).run(spikes)
        assert np.array_equal(event.accumulated, dense.accumulated)
        counters = event.counters[deep.name]
        assert counters.event_steps == 2
        assert counters.dense_steps == 0
        assert event.counters["fc"].dense_steps == 2

    def test_blocking_disabled_keeps_deep_shapes_dense(self):
        """event_kblock=0 restores the historical fallback: even under
        force_path='event' an unblocked-inexact shape runs dense, with
        the decision attributed to calibration."""
        from repro.runtime import InferenceEngine
        from repro.runtime.plan import NetworkPlan

        deep = make_conv_plan(64, 8, 8, 64, seed=3)
        rng_fc = np.random.default_rng(8)
        fc_w = rng_fc.standard_normal((8, 64 * 8 * 8)).astype(np.float32)
        head = LayerPlan(
            name="fc",
            kind="fc",
            wmat=fc_w,
            wT=np.ascontiguousarray(fc_w.T),
            bias=np.zeros(8, dtype=np.float32),
            input_shape=(64, 8, 8),
            output_shape=(8,),
        )
        plan = NetworkPlan(
            layers=[deep, head],
            beta=0.5,
            threshold=1.0,
            num_classes=8,
            population_group=1,
            spike_rule="threshold",
            source="deployable",
        )
        rng = np.random.default_rng(7)
        spikes = (rng.random((2, 3, 64, 8, 8)) < 0.05).astype(np.float32)
        with runtime_overrides(force_path="event", event_kblock=0):
            result = InferenceEngine(plan).run(spikes)
        counters = result.counters[deep.name]
        assert counters.event_steps == 0
        assert counters.dense_steps == 2
        assert counters.dense_calibration_steps == 2
