"""NetworkPlan persistence: save/load round trip next to the ``.npz``."""

import os

import numpy as np
import pytest

from repro.quant import FP32, INT4, convert
from repro.runtime import (
    InferenceEngine,
    load_plan,
    plan_deployable,
    plan_sidecar_path,
    save_plan,
    stack_encoder_frames,
)
from repro.runtime.kernels import (
    _CALIBRATION_CACHE,
    calibration_key,
    resolve_event_backend,
)
from repro.runtime.plan_io import environment_fingerprint
from repro.snn import build_network
from repro.snn.encoding import DirectEncoder
from repro.utils.serialization import load_npz, save_npz


@pytest.fixture(scope="module")
def network():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=55
    )
    net.eval()
    return net


@pytest.fixture(scope="module")
def deployable(network):
    return convert(network, FP32)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(3)
    return rng.random((6, 3, 8, 8)).astype(np.float32)


def engine_outputs(plan, images, timesteps=2):
    stacked, invariant = stack_encoder_frames(
        DirectEncoder(), images, timesteps
    )
    return InferenceEngine(plan).run(
        stacked, analog_first=True, time_invariant=invariant
    )


class TestSidecarPath:
    def test_npz_extension_replaced(self):
        assert plan_sidecar_path("/a/b/model.npz") == "/a/b/model.plan.npz"

    def test_other_paths_suffixed(self):
        assert plan_sidecar_path("/a/b/model") == "/a/b/model.plan.npz"


class TestRoundTrip:
    def test_loaded_plan_matches_live_lowered_outputs(
        self, deployable, images, tmp_path
    ):
        live = plan_deployable(deployable)
        path = str(tmp_path / "model.plan.npz")
        save_plan(live, path)
        loaded = load_plan(path)
        want = engine_outputs(live, images)
        got = engine_outputs(loaded, images)
        assert np.array_equal(got.accumulated, want.accumulated)
        assert got.stats.per_layer == want.stats.per_layer
        assert got.input_totals == want.input_totals

    def test_quantized_plan_round_trips(self, network, images, tmp_path):
        deployable = convert(network, INT4)
        live = plan_deployable(deployable)
        path = str(tmp_path / "model-int4.plan.npz")
        save_plan(live, path)
        loaded = load_plan(path)
        want = engine_outputs(live, images)
        got = engine_outputs(loaded, images)
        assert np.array_equal(got.accumulated, want.accumulated)

    def test_layer_metadata_preserved(self, deployable, tmp_path):
        live = plan_deployable(deployable)
        path = str(tmp_path / "meta.plan.npz")
        save_plan(live, path)
        loaded = load_plan(path)
        assert loaded.spike_rule == live.spike_rule
        assert loaded.num_classes == live.num_classes
        assert loaded.population_group == live.population_group
        for got, want in zip(loaded.layers, live.layers):
            assert got.name == want.name
            assert got.kind == want.kind
            assert got.pool_after == want.pool_after
            assert got.is_input_layer == want.is_input_layer
            assert got.input_shape == want.input_shape
            assert got.output_shape == want.output_shape
            assert np.array_equal(got.wmat, want.wmat)
            assert np.array_equal(got.bias, want.bias)

    def test_non_plan_artifact_rejected(self, tmp_path):
        from repro.errors import RuntimeUnsupportedError

        path = str(tmp_path / "other.npz")
        save_npz(path, {"x": np.zeros(3)}, {"format": "something-else"})
        with pytest.raises(RuntimeUnsupportedError):
            load_plan(path)


class TestAtomicSidecarWrites:
    """A crash mid-write must never leave a sidecar a loader would trust."""

    def test_crash_mid_write_preserves_previous_sidecar(
        self, deployable, tmp_path, monkeypatch
    ):
        """Dying inside the ``.plan.npz`` serialization leaves the old
        sidecar byte-identical and no temp-file litter -- the atomic
        temp + ``os.replace`` protocol at work."""
        live = plan_deployable(deployable)
        path = str(tmp_path / "model.plan.npz")
        save_plan(live, path)
        with open(path, "rb") as handle:
            before = handle.read()

        def torn_write(handle, **payload):
            handle.write(b"partial bytes then the process dies")
            raise KeyboardInterrupt("simulated crash mid-write")

        monkeypatch.setattr(np, "savez", torn_write)
        with pytest.raises(KeyboardInterrupt):
            save_plan(live, path)
        with open(path, "rb") as handle:
            assert handle.read() == before
        leftovers = [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]
        assert leftovers == []
        monkeypatch.undo()
        from repro.runtime import try_load_plan

        assert try_load_plan(path) is not None

    def test_crash_on_first_write_leaves_nothing(
        self, deployable, tmp_path, monkeypatch
    ):
        live = plan_deployable(deployable)
        path = str(tmp_path / "fresh.plan.npz")

        def torn_write(handle, **payload):
            raise KeyboardInterrupt("simulated crash mid-write")

        monkeypatch.setattr(np, "savez", torn_write)
        with pytest.raises(KeyboardInterrupt):
            save_plan(live, path)
        assert not os.path.exists(path)
        assert os.listdir(tmp_path) == []

    @pytest.mark.parametrize("keep_bytes", [0, 10, 0.5])
    def test_torn_sidecar_loads_as_none(
        self, deployable, tmp_path, keep_bytes
    ):
        """A truncated sidecar (as an unclean shutdown of a non-atomic
        writer would produce) is rejected by ``try_load_plan`` -- the
        caller falls back to live lowering instead of trusting it."""
        from repro.runtime import try_load_plan

        live = plan_deployable(deployable)
        path = str(tmp_path / "torn.plan.npz")
        save_plan(live, path)
        assert try_load_plan(path) is not None
        with open(path, "rb") as handle:
            payload = handle.read()
        cut = (
            int(len(payload) * keep_bytes)
            if isinstance(keep_bytes, float)
            else keep_bytes
        )
        with open(path, "wb") as handle:
            handle.write(payload[:cut])
        assert try_load_plan(path) is None

    def test_garbage_sidecar_loads_as_none(self, tmp_path):
        from repro.runtime import try_load_plan

        path = str(tmp_path / "garbage.plan.npz")
        with open(path, "wb") as handle:
            handle.write(b"\x00\x01not-a-zip-archive\xff" * 64)
        assert try_load_plan(path) is None


class TestCalibrationSeeding:
    def test_load_seeds_cache_and_skips_probes(
        self, deployable, tmp_path, monkeypatch
    ):
        live = plan_deployable(deployable)
        backend = resolve_event_backend("auto")
        path = str(tmp_path / "cal.plan.npz")
        save_plan(live, path)
        saved_verdicts = {
            calibration_key(layer, backend): _CALIBRATION_CACHE[
                calibration_key(layer, backend)
            ]
            for layer in live.layers
            if layer.kind == "conv"
        }
        monkeypatch.setattr(
            "repro.runtime.kernels._CALIBRATION_CACHE", {}
        )
        from repro.runtime import kernels

        loaded = load_plan(path)
        for layer in loaded.layers:
            if layer.kind != "conv":
                continue
            key = calibration_key(layer, backend)
            assert kernels._CALIBRATION_CACHE[key] == saved_verdicts[key]
        # A seeded cache means calibrate_event_exact never probes: break
        # the probe kernels and confirm the verdict still returns.
        monkeypatch.setattr(
            "repro.runtime.kernels.dense_conv",
            lambda *a, **k: pytest.fail("probe ran despite seeded cache"),
        )
        for layer in loaded.layers:
            if layer.kind == "conv":
                assert kernels.calibrate_event_exact(layer, backend) == (
                    saved_verdicts[calibration_key(layer, backend)]
                )

    def test_live_probe_wins_over_seeded_verdict(self, deployable, tmp_path):
        from repro.runtime.kernels import seed_calibration

        live = plan_deployable(deployable)
        backend = resolve_event_backend("auto")
        conv = next(l for l in live.layers if l.kind == "conv")
        key = calibration_key(conv, backend)
        probed = _CALIBRATION_CACHE.get(key)
        if probed is None:
            from repro.runtime.kernels import calibrate_event_exact

            probed = calibrate_event_exact(conv, backend)
        seed_calibration(key, not probed)  # lying sidecar
        assert _CALIBRATION_CACHE[key] == probed  # probe verdict kept

    def test_fingerprint_mismatch_ignores_verdicts(
        self, deployable, tmp_path, monkeypatch
    ):
        live = plan_deployable(deployable)
        path = str(tmp_path / "foreign.plan.npz")
        save_plan(live, path)
        arrays, meta = load_npz(path)
        meta["fingerprint"]["numpy"] = "0.0.0-foreign"
        save_npz(path, arrays, meta)
        monkeypatch.setattr(
            "repro.runtime.kernels._CALIBRATION_CACHE", {}
        )
        from repro.runtime import kernels

        load_plan(path)
        assert kernels._CALIBRATION_CACHE == {}

    def test_current_fingerprint_matches_itself(self):
        assert environment_fingerprint() == environment_fingerprint()

    def test_fingerprint_includes_blas_identity(self):
        fingerprint = environment_fingerprint()
        assert fingerprint["blas"]  # non-empty digest of the linked BLAS


class TestStaleSidecarGuard:
    def test_digest_mismatch_rejected(self, deployable, network, tmp_path):
        from repro.errors import RuntimeUnsupportedError

        path = str(tmp_path / "stale.plan.npz")
        save_plan(
            plan_deployable(deployable),
            path,
            model_digest=deployable.weights_digest(),
        )
        other = convert(network, INT4)  # 'retrained' model, same shapes
        assert other.weights_digest() != deployable.weights_digest()
        with pytest.raises(RuntimeUnsupportedError):
            load_plan(path, model_digest=other.weights_digest())
        # Without a digest to check against, the plan still loads.
        assert load_plan(path) is not None

    def test_retrained_model_ignores_stale_sidecar(
        self, deployable, network, tmp_path
    ):
        """load_deployable_with_plan falls back to live lowering when the
        sidecar belongs to an older train of the same architecture."""
        from repro.parallel import load_deployable_with_plan

        model_path = str(tmp_path / "model.npz")
        stale = convert(network, INT4)
        stale_plan = plan_deployable(stale)
        deployable.save(model_path)  # the 'retrained' artifact on disk
        save_plan(
            stale_plan,
            plan_sidecar_path(model_path),
            model_digest=stale.weights_digest(),
        )
        loaded = load_deployable_with_plan(model_path)
        assert loaded._runtime_plan is None  # stale sidecar not attached
        rng = np.random.default_rng(2)
        probe = rng.random((2, 3, 8, 8)).astype(np.float32)
        assert np.array_equal(
            loaded.forward(probe, 2).logits,
            deployable.forward(probe, 2).logits,
        )

    def test_corrupt_sidecar_falls_back_to_live_lowering(
        self, deployable, tmp_path
    ):
        from repro.parallel import load_deployable_with_plan
        from repro.runtime import try_load_plan

        model_path = str(tmp_path / "model.npz")
        deployable.save(model_path)
        sidecar = plan_sidecar_path(model_path)
        with open(sidecar, "wb") as handle:
            handle.write(b"not a zip archive at all")
        assert try_load_plan(sidecar) is None
        loaded = load_deployable_with_plan(model_path)  # must not raise
        assert loaded._runtime_plan is None

    def test_context_survives_corrupt_sidecar(self, tmp_path):
        from repro.experiments.context import ExperimentContext

        workspace = str(tmp_path / "ws")
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        model = ctx.trained("svhn", "fp32")
        path = ctx.model_path(ctx.model_key("svhn", "fp32", "direct"))
        sidecar = plan_sidecar_path(path)
        with open(sidecar, "wb") as handle:
            handle.write(b"\x00truncated")
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        reloaded = fresh.trained("svhn", "fp32")  # must rebuild, not raise
        rng = np.random.default_rng(6)
        probe = rng.random((2, 3, 8, 8)).astype(np.float32)
        assert np.array_equal(
            reloaded.forward(probe, 2).logits, model.forward(probe, 2).logits
        )

    def test_context_rebuilds_stale_sidecar(self, tmp_path):
        import os

        from repro.experiments.context import ExperimentContext

        workspace = str(tmp_path / "ws")
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        model = ctx.trained("svhn", "fp32")
        path = ctx.model_path(ctx.model_key("svhn", "fp32", "direct"))
        sidecar = plan_sidecar_path(path)
        # Simulate a retrain under an old sidecar: replace the model
        # artifact, keep the sidecar.
        other = ExperimentContext(scale="tiny", workspace=workspace, seed=1)
        retrained = other.trained("cifar10", "fp32")
        retrained.save(path)
        before = os.path.getmtime(sidecar)
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        reloaded = fresh.trained("svhn", "fp32")
        assert reloaded.weights_digest() == retrained.weights_digest()
        assert os.path.getmtime(sidecar) >= before  # sidecar rewritten
        rng = np.random.default_rng(4)
        probe = rng.random((2, 3, 8, 8)).astype(np.float32)
        assert np.array_equal(
            reloaded.forward(probe, 2).logits,
            retrained.forward(probe, 2).logits,
        )


class TestAttachPlan:
    def test_attach_mismatched_plan_rejected(self, network, deployable):
        from repro.errors import QuantizationError

        other = build_network(
            "6C3-MP2-30", input_shape=(3, 8, 8), num_classes=10, seed=9
        )
        other.eval()
        other_plan = plan_deployable(convert(other, FP32))
        with pytest.raises(QuantizationError):
            deployable.attach_plan(other_plan)

    def test_attach_spiking_origin_plan_rejected(self, network, deployable):
        """A plan lowered from the SpikingNetwork (shifted spike rule,
        un-folded BN) describes the same layer names/shapes but computes
        different numerics -- it must never attach to a deployable."""
        from repro.errors import QuantizationError
        from repro.runtime import plan_spiking

        spiking_plan = plan_spiking(network)
        with pytest.raises(QuantizationError):
            deployable.attach_plan(spiking_plan)

    def test_attached_sidecar_forward_matches(
        self, deployable, images, tmp_path
    ):
        from repro.parallel import load_deployable_with_plan

        model_path = str(tmp_path / "model.npz")
        deployable.save(model_path)
        save_plan(plan_deployable(deployable), plan_sidecar_path(model_path))
        loaded = load_deployable_with_plan(model_path)
        assert loaded._runtime_plan is not None  # sidecar attached
        want = deployable.forward(images, 2)
        got = loaded.forward(images, 2)
        assert np.array_equal(got.logits, want.logits)
        assert got.stats.per_layer == want.stats.per_layer

    def test_context_writes_and_reuses_sidecar(self, tmp_path):
        import os

        from repro.experiments.context import ExperimentContext

        workspace = str(tmp_path / "ws")
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        model = ctx.trained("svhn", "fp32")
        path = ctx.model_path(ctx.model_key("svhn", "fp32", "direct"))
        sidecar = plan_sidecar_path(path)
        assert os.path.exists(sidecar)
        assert model._runtime_plan is not None
        # A second context must load model + plan from disk unchanged.
        again = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        reloaded = again.trained("svhn", "fp32")
        assert reloaded._runtime_plan is not None
        rng = np.random.default_rng(1)
        probe = rng.random((3, 3, 8, 8)).astype(np.float32)
        assert np.array_equal(
            reloaded.forward(probe, 2).logits, model.forward(probe, 2).logits
        )


class TestSchemaCompat:
    """Earlier-PR sidecars must keep loading after each schema bump:
    v1 (no per-entry k-block), v2 (no per-entry cost rates), v3 (no
    integer lowering) and the current v4 all round-trip to bit-identical
    engine outputs."""

    def _downgrade_to_v1(self, path):
        arrays, meta = load_npz(path)
        meta["format"] = "network-plan-v1"
        for entry in meta["calibration"]:
            entry.pop("block", None)
            entry.pop("cost", None)
            entry.pop("int", None)
        for info in meta["layers"]:
            info.pop("has_int", None)
        arrays = {k: v for k, v in arrays.items() if ".wq" not in k}
        save_npz(path, arrays, meta)

    def _downgrade_to_v2(self, path):
        arrays, meta = load_npz(path)
        meta["format"] = "network-plan-v2"
        for entry in meta["calibration"]:
            entry.pop("cost", None)
            entry.pop("int", None)
        for info in meta["layers"]:
            info.pop("has_int", None)
        arrays = {k: v for k, v in arrays.items() if ".wq" not in k}
        save_npz(path, arrays, meta)

    def _downgrade_to_v3(self, path):
        arrays, meta = load_npz(path)
        meta["format"] = "network-plan-v3"
        for entry in meta["calibration"]:
            entry.pop("int", None)
        for info in meta["layers"]:
            info.pop("has_int", None)
        arrays = {k: v for k, v in arrays.items() if ".wq" not in k}
        save_npz(path, arrays, meta)

    def test_v1_sidecar_loads_and_seeds_unblocked_verdicts(
        self, deployable, images, tmp_path, monkeypatch
    ):
        live = plan_deployable(deployable)
        path = str(tmp_path / "legacy.plan.npz")
        save_plan(live, path)
        self._downgrade_to_v1(path)
        from repro.runtime import kernels

        monkeypatch.setattr(kernels, "_CALIBRATION_CACHE", {})
        monkeypatch.setattr(kernels, "_BLOCK_CHOICE_CACHE", {})
        loaded = load_plan(path)
        # Unblocked verdicts seeded; block choices left for live probing.
        assert kernels._CALIBRATION_CACHE
        assert kernels._BLOCK_CHOICE_CACHE == {}
        want = engine_outputs(live, images)
        got = engine_outputs(loaded, images)
        assert np.array_equal(got.accumulated, want.accumulated)

    def test_v2_sidecar_seeds_block_resolution(
        self, deployable, tmp_path, monkeypatch
    ):
        from repro.runtime import kernels
        from repro.runtime.kernels import resolve_event_backend

        live = plan_deployable(deployable)
        backend = resolve_event_backend("auto")
        path = str(tmp_path / "current.plan.npz")
        save_plan(live, path)
        expected = {
            calibration_key(layer, backend): kernels.resolve_event_block(
                layer, backend
            )
            for layer in live.layers
            if layer.kind == "conv"
        }
        monkeypatch.setattr(kernels, "_CALIBRATION_CACHE", {})
        monkeypatch.setattr(kernels, "_BLOCK_CHOICE_CACHE", {})
        monkeypatch.setattr(kernels, "_BLOCK_EXACT_CACHE", {})
        load_plan(path)
        assert kernels._BLOCK_CHOICE_CACHE == expected

    def test_v2_sidecar_loads_without_cost_rates(
        self, deployable, images, tmp_path
    ):
        live = plan_deployable(deployable)
        path = str(tmp_path / "v2.plan.npz")
        save_plan(live, path)
        self._downgrade_to_v2(path)
        loaded = load_plan(path)
        # No rates seeded: the dispatcher probes live on first use.
        assert all(
            layer.cost_state is None
            for layer in loaded.layers
            if layer.kind == "conv"
        )
        want = engine_outputs(live, images)
        got = engine_outputs(loaded, images)
        assert np.array_equal(got.accumulated, want.accumulated)

    def test_v3_sidecar_seeds_cost_state_and_skips_probe(
        self, deployable, tmp_path, monkeypatch
    ):
        """Event-eligible layers come back with the persisted dispatch
        cost rates attached, so cold workers never run the one-shot
        seeding probe GEMMs."""
        from repro.runtime import costmodel
        from repro.runtime.costmodel import ensure_cost_state
        from repro.runtime.kernels import (
            resolve_event_backend,
            resolve_event_block,
        )

        live = plan_deployable(deployable)
        backend = resolve_event_backend("auto")
        path = str(tmp_path / "v3.plan.npz")
        save_plan(live, path)
        arrays, meta = load_npz(path)
        assert meta["format"] == "network-plan-v4"
        saved = {
            tuple(entry["key"]): entry["cost"]
            for entry in meta["calibration"]
            if entry.get("cost") is not None
        }
        assert saved  # the tiny conv shapes are event-eligible
        loaded = load_plan(path)
        monkeypatch.setattr(
            costmodel,
            "probe_cost_state",
            lambda *a, **k: pytest.fail("probe ran despite seeded rates"),
        )
        for layer in loaded.layers:
            if layer.kind != "conv":
                continue
            block = resolve_event_block(layer, backend)
            if block is None:
                continue
            state = ensure_cost_state(layer, backend, block or None)
            from repro.runtime.kernels import calibration_key

            rates = saved[calibration_key(layer, backend)]
            assert state.dense_ms_per_sample == rates["dense_ms_per_sample"]
            assert state.event_ms_per_update == rates["event_ms_per_update"]

    def test_foreign_fingerprint_ignores_cost_rates(
        self, deployable, tmp_path
    ):
        """Rates are wall-clock measurements of the saving machine --
        like the calibration verdicts they must never cross an
        environment-fingerprint boundary."""
        live = plan_deployable(deployable)
        path = str(tmp_path / "foreign-cost.plan.npz")
        save_plan(live, path)
        arrays, meta = load_npz(path)
        meta["fingerprint"]["numpy"] = "0.0.0-foreign"
        save_npz(path, arrays, meta)
        loaded = load_plan(path)
        assert all(
            layer.cost_state is None
            for layer in loaded.layers
            if layer.kind == "conv"
        )

    def test_v4_persists_integer_lowering(
        self, network, images, tmp_path, monkeypatch
    ):
        """A quantized plan's int8 weights, scales, exactness verdicts
        and int cost rates all come back from the sidecar -- cold
        loaders never re-run the integer probes."""
        from repro.quant import INT8_P2
        from repro.runtime import costmodel
        from repro.runtime.kernels import resolve_event_backend

        live = plan_deployable(convert(network, INT8_P2))
        backend = resolve_event_backend("auto")
        path = str(tmp_path / "int.plan.npz")
        save_plan(live, path)
        loaded = load_plan(path)
        monkeypatch.setattr(
            costmodel,
            "probe_int_rates",
            lambda *a, **k: pytest.fail("int probe ran despite sidecar"),
        )
        from repro.runtime import kernels

        monkeypatch.setattr(
            kernels,
            "dense_conv",
            lambda *a, **k: pytest.fail("exactness probe ran"),
        )
        seen_int = False
        for got, want in zip(loaded.layers, live.layers):
            assert got.has_int_lowering == want.has_int_lowering
            if not want.has_int_lowering:
                continue
            seen_int = True
            assert got.wq.dtype == want.wq.dtype
            assert np.array_equal(got.wq, want.wq)
            assert np.array_equal(
                np.asarray(got.wq_scale), np.asarray(want.wq_scale)
            )
            assert got.int_bound == want.int_bound
            # Verdict seeded (the broken probes above would fail loudly
            # if calibrate_int_exact had to re-probe).
            for (b, block), verdict in want._int_exact.items():
                assert (
                    kernels.calibrate_int_exact(got, b, block or None)
                    == verdict
                )
            if want.cost_state is not None and (
                want.cost_state.int_event_ms_per_update is not None
            ):
                assert got.cost_state is not None
                assert (
                    got.cost_state.int_event_ms_per_update
                    == want.cost_state.int_event_ms_per_update
                )
        assert seen_int  # the quantized plan did carry a lowering

    def test_v3_sidecar_drops_integer_lowering_but_loads(
        self, network, images, tmp_path
    ):
        """Pre-v4 sidecars of quantized models load fine -- the plan
        simply runs float-only until the sidecar is rebuilt."""
        from repro.quant import INT8_P2

        live = plan_deployable(convert(network, INT8_P2))
        path = str(tmp_path / "v3-int.plan.npz")
        save_plan(live, path)
        self._downgrade_to_v3(path)
        loaded = load_plan(path)
        assert all(not layer.has_int_lowering for layer in loaded.layers)
        want = engine_outputs(live, images)
        got = engine_outputs(loaded, images)
        # auto int kernels are exactness-preserving, so the float-only
        # plan computes the identical result.
        assert np.array_equal(got.accumulated, want.accumulated)

    def test_context_rebuilds_pre_v4_sidecar_for_quantized_model(
        self, tmp_path
    ):
        """The numeric-path sidecar guard: a quantized model under
        int_kernels != 'off' must not keep a v3 sidecar that would pin
        it to float inference."""
        from repro.experiments.context import ExperimentContext
        from repro.runtime import try_load_plan

        workspace = str(tmp_path / "ws")
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        ctx.trained("svhn", "int8")
        path = ctx.model_path(ctx.model_key("svhn", "int8", "direct"))
        sidecar = plan_sidecar_path(path)
        self._downgrade_to_v3(sidecar)
        assert all(
            not layer.has_int_lowering
            for layer in try_load_plan(sidecar).layers
        )
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        model = fresh.trained("svhn", "int8")  # rebuilds + re-saves as v4
        assert any(
            layer.has_int_lowering for layer in model._runtime_plan.layers
        )
        reloaded = try_load_plan(sidecar)
        assert any(layer.has_int_lowering for layer in reloaded.layers)

    def test_unknown_future_format_rejected(self, deployable, tmp_path):
        from repro.errors import RuntimeUnsupportedError

        live = plan_deployable(deployable)
        path = str(tmp_path / "future.plan.npz")
        save_plan(live, path)
        arrays, meta = load_npz(path)
        meta["format"] = "network-plan-v99"
        save_npz(path, arrays, meta)
        with pytest.raises(RuntimeUnsupportedError):
            load_plan(path)
