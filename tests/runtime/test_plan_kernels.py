"""Unit tests for plans, geometry tables and the paired kernels."""

import numpy as np
import pytest

from repro.quant import FP32, INT4, convert
from repro.runtime import (
    BufferPool,
    conv_geometry,
    plan_deployable,
    plan_spiking,
)
from repro.runtime.kernels import (
    calibrate_event_exact,
    dense_conv,
    dense_fc,
    event_conv,
    or_pool,
    resolve_event_backend,
)
from repro.snn import build_network
from repro.snn.neuron import LIFConfig, LIFNeuron, lif_scan
from repro.tensor import Tensor
from repro.tensor.ops import im2col


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="module")
def network():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=5
    )
    net.eval()
    return net


class TestGeometry:
    def test_cache_returns_same_object(self):
        a = conv_geometry(4, 6, 6, 3, 1)
        b = conv_geometry(4, 6, 6, 3, 1)
        assert a is b

    def test_contrib_tables_invert_im2col(self, rng):
        cin, h, w, k, pad = 3, 6, 5, 3, 1
        g = conv_geometry(cin, h, w, k, pad)
        x = (rng.random((cin, h, w)) < 0.4).astype(np.float32)
        cols = im2col(x[None], (k, k), 1, pad)[0]  # (K, P)
        rebuilt = np.zeros((g.k, g.p), dtype=np.float32)
        pix = np.flatnonzero(x.reshape(-1))
        kk = g.contrib_k[pix]
        pp = g.contrib_p[pix]
        vv = g.contrib_valid[pix]
        rebuilt[kk[vv], pp[vv]] = 1.0
        assert np.array_equal(rebuilt, cols)


class TestKernels:
    @pytest.fixture(scope="class")
    def conv_plan(self, network):
        return plan_spiking(network).layers[0]

    @pytest.fixture(scope="class")
    def fc_plan(self, network):
        return plan_spiking(network).layers[-1]

    def test_dense_conv_matches_ops_conv2d(self, network, conv_plan, rng):
        from repro.tensor import no_grad, ops

        x = (rng.random((5, 3, 8, 8)) < 0.3).astype(np.float32)
        stage = network.stages[0]
        with no_grad():
            want = ops.conv2d(
                Tensor(x), stage.layer.weight, stage.layer.bias, 1, 1
            ).data
        got = dense_conv(conv_plan, x)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("backend", ["scipy", "numpy"])
    def test_event_conv_matches_dense_conv(self, conv_plan, rng, backend):
        if backend == "scipy":
            backend = resolve_event_backend("auto")
        for density in (0.0, 0.02, 0.3, 1.0):
            x = (rng.random((4, 3, 8, 8)) < density).astype(np.float32)
            want = dense_conv(conv_plan, x)
            got, updates = event_conv(conv_plan, x, backend)
            assert np.array_equal(got, want), f"density {density}"
            if density == 0.0:
                assert updates == 0

    def test_dense_fc_matches_legacy_matmul(self, network, fc_plan, rng):
        x = (rng.random((6, fc_plan.wmat.shape[1])) < 0.2).astype(np.float32)
        stage = network.stages[-1]
        want = x @ stage.layer.weight.data.T + stage.layer.bias.data
        assert np.array_equal(dense_fc(fc_plan, x), want)

    def test_calibration_gates_event_dispatch(self, conv_plan):
        backend = resolve_event_backend("auto")
        # The tiny conv shape must calibrate exact in-environment (the
        # per-shape verdict is what the dispatcher relies on).
        assert calibrate_event_exact(conv_plan, backend) is True
        # Cached verdict: second call hits the process-wide cache.
        assert calibrate_event_exact(conv_plan, backend) is True

    def test_dense_conv_chunking_bitexact(self, conv_plan, rng):
        x = (rng.random((7, 3, 8, 8)) < 0.5).astype(np.float32)
        whole = dense_conv(conv_plan, x)
        chunked = dense_conv(conv_plan, x, max_elements=conv_plan.geometry.k)
        assert np.array_equal(whole, chunked)

    def test_or_pool_matches_reshape_max(self, rng):
        x = (rng.random((6, 4, 8, 8)) < 0.3).astype(np.float32)
        want = x.reshape(6, 4, 4, 2, 4, 2).max(axis=(3, 5))
        assert np.array_equal(or_pool(x, 2), want)

    def test_buffer_pool_reuses_arrays(self):
        pool = BufferPool()
        a = pool.get("cols", (2, 3))
        b = pool.get("cols", (2, 3))
        c = pool.get("cols", (2, 4))
        assert a is b
        assert a is not c
        pool.clear()
        assert pool.get("cols", (2, 3)) is not a


class TestLifScan:
    def test_matches_stepwise_neuron(self, rng):
        current = rng.normal(size=(4, 5, 6)).astype(np.float32)
        config = LIFConfig(beta=0.15, threshold=0.5)
        neuron = LIFNeuron(config)
        membrane = None
        want = []
        for t in range(4):
            spikes, membrane = neuron.step(Tensor(current[t]), membrane)
            want.append(spikes.data)
        got, _ = lif_scan(current, config.beta, config.threshold, "shifted")
        assert np.array_equal(got, np.stack(want))

    def test_matches_deployable_rule(self, rng):
        current = rng.normal(size=(3, 4, 4)).astype(np.float32)
        beta, theta = 0.15, 0.5
        membrane = None
        want = []
        for t in range(3):
            integrated = (
                current[t] if membrane is None else beta * membrane + current[t]
            )
            spikes = (integrated > theta).astype(np.float32)
            membrane = integrated - spikes * theta
            want.append(spikes)
        got, final = lif_scan(current, beta, theta, "threshold")
        assert np.array_equal(got, np.stack(want))
        assert np.array_equal(final, membrane)

    def test_rejects_unknown_rule(self, rng):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="spike_rule"):
            lif_scan(np.zeros((1, 2), dtype=np.float32), 0.1, 0.5, "bogus")


class TestPlans:
    def test_deployable_plan_hoists_dequantization(self, network):
        deployable = convert(network, INT4)
        plan = plan_deployable(deployable)
        for layer, src in zip(plan.layers, deployable.layers):
            want = src.effective_weight().reshape(layer.wmat.shape[0], -1)
            assert np.array_equal(layer.wmat, want)
            assert layer.wT.flags["C_CONTIGUOUS"]
            assert np.array_equal(layer.wT, layer.wmat.T)

    def test_spiking_plan_captures_bn_constants(self, network):
        plan = plan_spiking(network)
        conv = plan.layers[0]
        assert conv.has_bn
        assert conv.bn_mu.shape == (1, 8, 1, 1)
        assert plan.spike_rule == "shifted"

    def test_deployable_plan_folds_pool(self, network):
        plan = plan_deployable(convert(network, FP32))
        assert plan.layers[0].pool_after == 2
        assert plan.layers[-1].pool_after == 1
        assert plan.spike_rule == "threshold"
