"""Partitioner tests: LW recipe, balanced DSE, uniform baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.model import LayerWorkload
from repro.workload.partition import (
    balanced_allocation,
    imbalance,
    layer_overheads,
    proportional_allocation,
    uniform_allocation,
)
from repro.workload.sweep import pareto_front, sweep_budgets


def _workloads(values, dense=1000.0):
    layers = [LayerWorkload("conv1_1", "dense", dense, 100.0, 8)]
    for index, value in enumerate(values):
        layers.append(
            LayerWorkload(f"layer{index}", "conv", value, value / 9.0, 8)
        )
    return layers


class TestProportional:
    def test_lightest_layer_gets_floor(self):
        result = proportional_allocation(_workloads([100.0, 400.0, 800.0]))
        assert result.allocation == (1, 1, 4, 8)

    def test_dense_rows_fixed(self):
        result = proportional_allocation(
            _workloads([100.0, 200.0]), dense_rows=3
        )
        assert result.allocation[0] == 3

    def test_imbalance_near_one_for_proportional_loads(self):
        result = proportional_allocation(_workloads([100.0, 200.0, 400.0]))
        sparse_latencies = result.latencies[1:]
        assert max(sparse_latencies) / min(sparse_latencies) < 1.5

    def test_rejects_bad_floor(self):
        with pytest.raises(WorkloadError):
            proportional_allocation(_workloads([10.0]), floor=0)

    def test_no_sparse_layers(self):
        dense_only = [LayerWorkload("d", "dense", 10.0, 1.0, 1)]
        with pytest.raises(WorkloadError):
            proportional_allocation(dense_only)


class TestBalanced:
    def test_respects_budget(self):
        workloads = _workloads([100.0, 350.0, 900.0, 40.0])
        result = balanced_allocation(workloads, budget=20)
        assert sum(result.allocation[1:]) <= 20

    def test_beats_uniform_on_skewed_loads(self):
        workloads = _workloads([1000.0, 10.0, 10.0, 10.0], dense=1.0)
        balanced = balanced_allocation(workloads, budget=8)
        uniform = uniform_allocation(workloads, budget=8)
        assert balanced.bottleneck_cycles < uniform.bottleneck_cycles

    def test_budget_too_small(self):
        with pytest.raises(WorkloadError):
            balanced_allocation(_workloads([1.0, 2.0, 3.0]), budget=2)

    @given(
        st.lists(st.floats(1.0, 1e6), min_size=2, max_size=8),
        st.integers(8, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_optimality_property(self, values, budget):
        """No layer's latency exceeds the target the search settled on by
        more than one core's worth of rounding."""
        if budget < len(values):
            budget = len(values)
        workloads = _workloads(values)
        result = balanced_allocation(workloads, budget=budget)
        assert sum(result.allocation[1:]) <= budget
        # Feasibility: every sparse layer got >= 1 core.
        assert all(c >= 1 for c in result.allocation)

    def test_more_budget_never_worse(self):
        workloads = _workloads([500.0, 300.0, 900.0])
        small = balanced_allocation(workloads, budget=6)
        large = balanced_allocation(workloads, budget=24)
        assert large.bottleneck_cycles <= small.bottleneck_cycles


class TestUniform:
    def test_even_split(self):
        result = uniform_allocation(_workloads([1.0, 1.0, 1.0]), budget=9)
        assert result.allocation == (1, 3, 3, 3)

    def test_remainder_distributed(self):
        result = uniform_allocation(_workloads([1.0, 1.0, 1.0]), budget=10)
        assert sum(result.allocation[1:]) == 10

    def test_budget_too_small(self):
        with pytest.raises(WorkloadError):
            uniform_allocation(_workloads([1.0, 1.0]), budget=1)


class TestMetrics:
    def test_overheads_sum_to_100(self):
        workloads = _workloads([100.0, 300.0])
        overheads = layer_overheads(workloads, (1, 2, 4))
        assert sum(overheads.values()) == pytest.approx(100.0)

    def test_imbalance_uniform_loads(self):
        workloads = _workloads([100.0, 100.0], dense=100.0)
        assert imbalance(workloads, (1, 1, 1)) == pytest.approx(1.0)

    def test_allocation_length_checked(self):
        with pytest.raises(WorkloadError):
            layer_overheads(_workloads([1.0]), (1,))


class TestSweep:
    def test_monotone_bottleneck(self):
        workloads = _workloads([500.0, 200.0, 900.0])
        points = sweep_budgets(workloads, [4, 8, 16, 32])
        bottlenecks = [p.bottleneck_cycles for p in points]
        assert bottlenecks == sorted(bottlenecks, reverse=True)

    def test_pareto_front_nondominated(self):
        workloads = _workloads([500.0, 200.0, 900.0])
        points = sweep_budgets(workloads, [4, 6, 8, 12, 16])
        front = pareto_front(points)
        for earlier, later in zip(front, front[1:]):
            assert later.total_cores > earlier.total_cores
            assert later.bottleneck_cycles < earlier.bottleneck_cycles

    def test_empty_budgets_rejected(self):
        with pytest.raises(WorkloadError):
            sweep_budgets(_workloads([1.0]), [])
