"""Workload model (Eq. 3) tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.model import (
    dense_workload,
    estimate_input_events,
    measured_input_density,
    workloads_from_network,
)


@pytest.fixture
def workloads(tiny_deployable):
    events = {"conv1_1": 192.0, "conv2_1": 150.0, "fc1": 40.0}
    return workloads_from_network(tiny_deployable, events, timesteps=2)


class TestWorkloadsFromNetwork:
    def test_layer_kinds(self, workloads):
        assert [w.kind for w in workloads] == ["dense", "conv", "fc"]

    def test_conv_follows_eq3(self, workloads, tiny_deployable):
        conv = workloads[1]
        layer = tiny_deployable.layers[1]
        assert conv.work == 9 * layer.out_channels * 150.0

    def test_fc_follows_eq3(self, workloads, tiny_deployable):
        fc = workloads[2]
        assert fc.work == tiny_deployable.layers[2].out_channels * 40.0

    def test_dense_workload_activity_independent(self, tiny_deployable):
        low = workloads_from_network(
            tiny_deployable, {"conv1_1": 0.0, "conv2_1": 1.0, "fc1": 1.0}, 2
        )
        high = workloads_from_network(
            tiny_deployable, {"conv1_1": 9999.0, "conv2_1": 1.0, "fc1": 1.0}, 2
        )
        assert low[0].work == high[0].work

    def test_rate_mode_treats_input_as_sparse(self, tiny_deployable):
        events = {"conv1_1": 100.0, "conv2_1": 1.0, "fc1": 1.0}
        workloads = workloads_from_network(
            tiny_deployable, events, 2, use_dense_core=False
        )
        assert workloads[0].kind == "conv"
        assert workloads[0].work == 9 * tiny_deployable.layers[0].out_channels * 100.0

    def test_negative_events_rejected(self, tiny_deployable):
        with pytest.raises(WorkloadError):
            workloads_from_network(
                tiny_deployable, {"conv1_1": 0, "conv2_1": -1.0, "fc1": 0}, 2
            )

    def test_latency_divides_by_cores(self, workloads):
        conv = workloads[1]
        assert conv.latency_cycles(4) == conv.work / 4

    def test_latency_rejects_zero_cores(self, workloads):
        with pytest.raises(WorkloadError):
            workloads[1].latency_cycles(0)


class TestDenseWorkload:
    def test_single_pass(self):
        # 3*3*3=27 taps fit the 27-PE column exactly.
        work = dense_workload(64, 32, 32, 3, 3, pe_columns=27, timesteps=1)
        assert work == 64 * 32 * 32

    def test_multi_pass(self):
        work = dense_workload(8, 4, 4, 6, 3, pe_columns=27)
        assert work == 8 * 16 * 2  # 54 taps -> 2 passes

    def test_timesteps_multiply(self):
        assert dense_workload(8, 4, 4, 3, 3, timesteps=2) == 2 * dense_workload(
            8, 4, 4, 3, 3, timesteps=1
        )


class TestDensityConversions:
    def test_roundtrip(self, tiny_deployable):
        events = {"conv1_1": 100.0, "conv2_1": 60.0, "fc1": 10.0}
        density = measured_input_density(events, tiny_deployable, 2)
        back = estimate_input_events(tiny_deployable, density, 2)
        for name in events:
            assert back[name] == pytest.approx(events[name], rel=1e-6)

    def test_density_clipped_to_one(self, tiny_deployable):
        events = {"conv1_1": 1e9, "conv2_1": 0.0, "fc1": 0.0}
        density = measured_input_density(events, tiny_deployable, 2)
        assert density["conv1_1"] == 1.0

    def test_estimate_validates_density(self, tiny_deployable):
        with pytest.raises(WorkloadError):
            estimate_input_events(tiny_deployable, {"conv1_1": 1.5}, 2)

    def test_extrapolation_scales_with_size(self, tiny_deployable):
        density = {"conv1_1": 0.5, "conv2_1": 0.25, "fc1": 0.1}
        events_t2 = estimate_input_events(tiny_deployable, density, 2)
        events_t4 = estimate_input_events(tiny_deployable, density, 4)
        for name in density:
            assert events_t4[name] == pytest.approx(2 * events_t2[name])
