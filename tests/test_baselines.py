"""Baseline model tests."""

import pytest

from repro.baselines import (
    GERLINGHOFF_DATE22,
    SYNCNN_CIFAR10,
    SYNCNN_SVHN,
    all_baselines,
    rate_coded_config,
)
from repro.hw.config import lw_config
from repro.quant.schemes import INT4


class TestPriorWorkPoints:
    def test_paper_table3_values(self):
        assert SYNCNN_SVHN.throughput_fps == 65.0
        assert SYNCNN_CIFAR10.accuracy_percent == 78.0
        assert GERLINGHOFF_DATE22.power_w == 4.9
        assert GERLINGHOFF_DATE22.platform == "XCVU13P"

    def test_all_baselines_order(self):
        baselines = all_baselines()
        assert [b.dataset for b in baselines] == ["svhn", "cifar10", "cifar100"]

    def test_energy_per_frame_derived(self):
        energy = SYNCNN_CIFAR10.energy_per_frame_mj()
        assert energy == pytest.approx(1e3 * 0.4 / 62.0)

    def test_energy_per_frame_reported_wins(self):
        from dataclasses import replace

        point = replace(SYNCNN_CIFAR10, energy_mj=5.0)
        assert point.energy_per_frame_mj() == 5.0


class TestRateCodedConfig:
    def test_dense_core_off(self):
        config = rate_coded_config(lw_config("cifar10", scheme=INT4))
        assert not config.use_dense_core
        assert config.name == "lw-rate"

    def test_allocation_preserved(self):
        base = lw_config("cifar10", scheme=INT4)
        config = rate_coded_config(base)
        assert config.allocation == base.allocation
        assert config.scheme is base.scheme
