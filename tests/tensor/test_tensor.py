"""Tests for the Tensor class and graph mechanics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.tensor import Tensor, no_grad, ops, parameter
from repro.tensor.tensor import collect_parameters, grad_enabled


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float32

    def test_from_scalar(self):
        t = Tensor(2.5)
        assert t.shape == ()
        assert t.item() == pytest.approx(2.5)

    def test_item_requires_single_element(self):
        with pytest.raises(GraphError):
            Tensor([1.0, 2.0]).item()

    def test_parameter_requires_grad(self):
        p = parameter(np.zeros((2, 2)))
        assert p.requires_grad

    def test_plain_tensor_does_not_require_grad(self):
        assert not Tensor(np.zeros(3)).requires_grad

    def test_repr_mentions_shape_and_grad(self):
        p = parameter(np.zeros((2, 3)), name="w")
        text = repr(p)
        assert "(2, 3)" in text
        assert "requires_grad=True" in text

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestBackward:
    def test_scalar_backward_seeds_one(self):
        x = parameter(3.0)
        y = x * x
        y.backward()
        assert x.grad == pytest.approx(6.0)

    def test_backward_nonscalar_requires_grad_arg(self):
        x = parameter(np.ones(3))
        y = x * 2.0
        with pytest.raises(GraphError):
            y.backward()

    def test_backward_accumulates(self):
        x = parameter(2.0)
        y1 = x * 3.0
        y2 = x * 4.0
        y1.backward()
        y2.backward()
        assert x.grad == pytest.approx(7.0)

    def test_zero_grad(self):
        x = parameter(2.0)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self):
        # f = (x*2) + (x*3) -> df/dx = 5
        x = parameter(1.5)
        y = x * 2.0 + x * 3.0
        y.backward()
        assert x.grad == pytest.approx(5.0)

    def test_deep_chain_does_not_recurse(self):
        # 5000-node chain would overflow the default recursion limit if
        # the topological sort were recursive.
        x = parameter(1.0)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_grad_shape_mismatch_raises(self):
        x = parameter(np.ones((2, 2)))
        with pytest.raises(GraphError):
            x.accumulate_grad(np.ones(3))


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = parameter(2.0)
        with no_grad():
            y = x * x
        assert not y.requires_grad

    def test_no_grad_restores(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
        assert grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not grad_enabled()

    def test_detach_cuts_graph(self):
        x = parameter(2.0)
        y = (x * x).detach()
        z = y * 3.0
        assert not z.requires_grad


class TestCollectParameters:
    def test_deduplicates(self):
        p = parameter(np.zeros(2))
        out = collect_parameters([p, p])
        assert out == [p]

    def test_skips_non_trainable(self):
        p = parameter(np.zeros(2))
        t = Tensor(np.zeros(2))
        assert collect_parameters([p, t]) == [p]

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            collect_parameters([42])


class TestOperators:
    def test_radd_rsub_rmul_rtruediv(self):
        x = parameter(np.array([2.0]))
        assert (1.0 + x).data[0] == pytest.approx(3.0)
        assert (5.0 - x).data[0] == pytest.approx(3.0)
        assert (3.0 * x).data[0] == pytest.approx(6.0)
        assert (8.0 / x).data[0] == pytest.approx(4.0)

    def test_neg(self):
        x = parameter(np.array([2.0, -1.0]))
        y = -x
        np.testing.assert_allclose(y.data, [-2.0, 1.0])

    def test_pow(self):
        x = parameter(np.array([3.0]))
        y = x**2.0
        y.backward(np.ones(1))
        assert x.grad[0] == pytest.approx(6.0)

    def test_reshape_roundtrip_gradient(self):
        x = parameter(np.arange(6, dtype=np.float32))
        y = x.reshape(2, 3)
        (y * 2.0).backward(np.ones((2, 3)))
        np.testing.assert_allclose(x.grad, np.full(6, 2.0))

    def test_sum_and_mean_methods(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert x.sum().item() == pytest.approx(15.0)
        assert x.mean().item() == pytest.approx(2.5)

    def test_transpose_method(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert x.transpose().shape == (3, 2)
