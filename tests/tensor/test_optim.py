"""Optimizer tests: convergence on convex problems, config validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.tensor import Tensor, ops, parameter
from repro.tensor.optim import SGD, Adam


def quadratic_loss(x):
    target = Tensor(np.array([1.0, -2.0, 3.0], dtype=np.float32))
    diff = x - target
    return ops.sum_(diff * diff)


class TestSGD:
    def test_converges_on_quadratic(self):
        x = parameter(np.zeros(3, dtype=np.float32))
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(x).backward()
            opt.step()
        np.testing.assert_allclose(x.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_momentum_converges(self):
        x = parameter(np.zeros(3, dtype=np.float32))
        opt = SGD([x], lr=0.05, momentum=0.9)
        for _ in range(150):
            opt.zero_grad()
            quadratic_loss(x).backward()
            opt.step()
        np.testing.assert_allclose(x.data, [1.0, -2.0, 3.0], atol=5e-2)

    def test_weight_decay_shrinks(self):
        x = parameter(np.ones(2, dtype=np.float32))
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # Loss gradient zero -> only decay acts.
        x.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert np.all(x.data < 1.0)

    def test_skips_params_without_grad(self):
        x = parameter(np.ones(2, dtype=np.float32))
        SGD([x], lr=0.1).step()  # no grad -> no change, no crash
        np.testing.assert_array_equal(x.data, np.ones(2))

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            SGD([parameter(np.ones(1))], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigError):
            SGD([parameter(np.ones(1))], momentum=1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_rejects_non_trainable(self):
        with pytest.raises(ConfigError):
            SGD([Tensor(np.ones(1))], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        x = parameter(np.zeros(3, dtype=np.float32))
        opt = Adam([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(x).backward()
            opt.step()
        np.testing.assert_allclose(x.data, [1.0, -2.0, 3.0], atol=1e-2)

    def test_bias_correction_first_step(self):
        # After one step, Adam moves by ~lr regardless of grad magnitude.
        x = parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([x], lr=0.01)
        x.grad = np.array([1000.0], dtype=np.float32)
        opt.step()
        assert abs(x.data[0] + 0.01) < 1e-4

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigError):
            Adam([parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_zero_grad_clears(self):
        x = parameter(np.ones(2, dtype=np.float32))
        opt = Adam([x])
        x.grad = np.ones(2, dtype=np.float32)
        opt.zero_grad()
        assert x.grad is None

    def test_weight_decay(self):
        x = parameter(np.ones(1, dtype=np.float32) * 10.0)
        opt = Adam([x], lr=0.1, weight_decay=1.0)
        x.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert x.data[0] < 10.0
