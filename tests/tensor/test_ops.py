"""Numeric gradient checks and semantics tests for every primitive op."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, gradient_error, ops, parameter

TOL = 2e-2  # float32 finite differences


def check(func, inputs, wrt=0, eps=1e-3):
    err = gradient_error(func, inputs, wrt=wrt, eps=eps)
    assert err < TOL, f"gradient error {err} for input {wrt}"


class TestElementwiseGradients:
    def test_add_broadcast(self, rng):
        a = parameter(rng.normal(size=(3, 4)))
        b = parameter(rng.normal(size=(4,)))
        check(ops.add, [a, b], 0)
        check(ops.add, [a, b], 1)

    def test_sub(self, rng):
        a = parameter(rng.normal(size=(2, 3)))
        b = parameter(rng.normal(size=(2, 3)))
        check(ops.sub, [a, b], 0)
        check(ops.sub, [a, b], 1)

    def test_mul_broadcast(self, rng):
        a = parameter(rng.normal(size=(2, 3)))
        b = parameter(rng.normal(size=(1, 3)))
        check(ops.mul, [a, b], 0)
        check(ops.mul, [a, b], 1)

    def test_div(self, rng):
        a = parameter(rng.normal(size=(3,)))
        b = parameter(rng.uniform(1.0, 2.0, size=(3,)))
        check(ops.div, [a, b], 0)
        check(ops.div, [a, b], 1)

    def test_neg(self, rng):
        a = parameter(rng.normal(size=(4,)))
        check(ops.neg, [a])

    def test_power(self, rng):
        a = parameter(rng.uniform(0.5, 2.0, size=(5,)))
        check(lambda x: ops.power(x, 3.0), [a])

    def test_exp(self, rng):
        a = parameter(rng.normal(size=(4,)) * 0.5)
        check(ops.exp, [a])

    def test_log(self, rng):
        a = parameter(rng.uniform(0.5, 3.0, size=(4,)))
        check(ops.log, [a])

    def test_sqrt(self, rng):
        a = parameter(rng.uniform(0.5, 3.0, size=(4,)))
        check(ops.sqrt, [a])

    def test_sigmoid(self, rng):
        a = parameter(rng.normal(size=(4,)))
        check(ops.sigmoid, [a])

    def test_relu(self, rng):
        a = parameter(rng.normal(size=(10,)) + 0.05)
        check(ops.relu, [a], eps=1e-4)

    def test_clip_gradient_masked(self):
        a = parameter(np.array([-2.0, 0.0, 2.0], dtype=np.float32))
        out = ops.clip(a, -1.0, 1.0)
        out.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestShapeOps:
    def test_reshape_gradient(self, rng):
        a = parameter(rng.normal(size=(2, 6)))
        check(lambda x: ops.reshape(x, (3, 4)), [a])

    def test_transpose_gradient(self, rng):
        a = parameter(rng.normal(size=(2, 3, 4)))
        check(lambda x: ops.transpose(x, (2, 0, 1)), [a])

    def test_concatenate_gradient(self, rng):
        a = parameter(rng.normal(size=(2, 3)))
        b = parameter(rng.normal(size=(2, 2)))
        check(lambda x, y: ops.concatenate([x, y], axis=1), [a, b], 0)
        check(lambda x, y: ops.concatenate([x, y], axis=1), [a, b], 1)

    def test_stack_gradient(self, rng):
        a = parameter(rng.normal(size=(2, 3)))
        b = parameter(rng.normal(size=(2, 3)))
        check(lambda x, y: ops.stack([x, y], axis=0), [a, b], 0)

    def test_pad2d_gradient(self, rng):
        a = parameter(rng.normal(size=(1, 2, 3, 3)))
        check(lambda x: ops.pad2d(x, 1), [a])

    def test_pad2d_zero_is_identity(self, rng):
        a = parameter(rng.normal(size=(1, 1, 2, 2)))
        assert ops.pad2d(a, 0) is a


class TestReductions:
    def test_sum_all(self, rng):
        a = parameter(rng.normal(size=(3, 4)))
        check(lambda x: ops.sum_(x), [a])

    def test_sum_axis_keepdims(self, rng):
        a = parameter(rng.normal(size=(3, 4)))
        check(lambda x: ops.sum_(x, axis=1, keepdims=True), [a])

    def test_sum_multi_axis(self, rng):
        a = parameter(rng.normal(size=(2, 3, 4)))
        check(lambda x: ops.sum_(x, axis=(0, 2)), [a])

    def test_mean_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            ops.mean(a, axis=0).data, a.data.mean(axis=0), rtol=1e-5
        )

    def test_max_gradient_splits_ties(self):
        a = parameter(np.array([[1.0, 1.0, 0.0]], dtype=np.float32))
        out = ops.max_(a, axis=1)
        out.backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestMatmulLinear:
    def test_matmul_gradients(self, rng):
        a = parameter(rng.normal(size=(3, 4)))
        b = parameter(rng.normal(size=(4, 5)))
        check(ops.matmul, [a, b], 0)
        check(ops.matmul, [a, b], 1)

    def test_matmul_requires_2d(self, rng):
        a = parameter(rng.normal(size=(3,)))
        b = parameter(rng.normal(size=(3, 2)))
        with pytest.raises(ShapeError):
            ops.matmul(a, b)

    def test_linear_matches_numpy(self, rng):
        x = Tensor(rng.normal(size=(2, 3)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 3)).astype(np.float32))
        b = Tensor(rng.normal(size=(4,)).astype(np.float32))
        out = ops.linear(x, w, b)
        np.testing.assert_allclose(
            out.data, x.data @ w.data.T + b.data, rtol=1e-5
        )


class TestConv:
    def test_conv_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)).astype(np.float32))
        w = Tensor(np.ones((1, 1, 3, 3), dtype=np.float32))
        out = ops.conv2d(x, w, padding=1)
        # Centre pixel = sum of the 3x3 neighbourhood.
        expected = x.data[0, 0, 0:3, 0:3].sum()
        assert out.data[0, 0, 1, 1] == pytest.approx(expected, rel=1e-5)

    def test_conv_gradients(self, rng):
        x = parameter(rng.normal(size=(2, 3, 5, 5)))
        w = parameter(rng.normal(size=(4, 3, 3, 3)) * 0.3)
        b = parameter(rng.normal(size=(4,)) * 0.1)
        f = lambda x, w, b: ops.conv2d(x, w, b, padding=1)  # noqa: E731
        check(f, [x, w, b], 0)
        check(f, [x, w, b], 1)
        check(f, [x, w, b], 2)

    def test_conv_stride2(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)).astype(np.float32))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
        out = ops.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 3, 3, 3)

    def test_conv_channel_mismatch(self, rng):
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((3, 5, 3, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.conv2d(x, w)

    def test_im2col_col2im_adjoint(self, rng):
        # <im2col(x), y> == <x, col2im(y)> -- the defining adjoint identity.
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        cols = ops.im2col(x, (3, 3), 1, 1)
        y = rng.normal(size=cols.shape).astype(np.float32)
        back = ops.col2im(y, x.shape, (3, 3), 1, 1)
        lhs = float((cols * y).sum())
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestPooling:
    def test_maxpool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = ops.maxpool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient(self, rng):
        x = parameter(rng.normal(size=(2, 2, 4, 4)))
        check(lambda t: ops.maxpool2d(t, 2), [x], eps=1e-4)

    def test_maxpool_rejects_uneven(self):
        x = Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.maxpool2d(x, 2)

    def test_maxpool_binary_is_or(self, rng):
        spikes = (rng.random((2, 3, 4, 4)) < 0.4).astype(np.float32)
        out = ops.maxpool2d(Tensor(spikes), 2).data
        tiles = spikes.reshape(2, 3, 2, 2, 2, 2)
        expected = (tiles.sum(axis=(3, 5)) > 0).astype(np.float32)
        np.testing.assert_array_equal(out, expected)

    def test_avgpool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = ops.avgpool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradient(self, rng):
        x = parameter(rng.normal(size=(1, 2, 4, 4)))
        check(lambda t: ops.avgpool2d(t, 2), [x])


class TestCustomGradOps:
    def test_heaviside_forward(self):
        v = Tensor(np.array([-1.0, 0.0, 0.5], dtype=np.float32))
        out = ops.heaviside_surrogate(v, lambda u: np.ones_like(u))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 1.0])

    def test_heaviside_backward_uses_surrogate(self):
        v = parameter(np.array([0.2, -0.2], dtype=np.float32))
        out = ops.heaviside_surrogate(v, lambda u: 2.0 * np.ones_like(u))
        out.backward(np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(v.grad, [2.0, 2.0])

    def test_straight_through_passes_gradient(self):
        x = parameter(np.array([1.0, 2.0], dtype=np.float32))
        out = ops.straight_through(x, np.array([10.0, 20.0], dtype=np.float32))
        out.backward(np.array([1.0, 3.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [1.0, 3.0])
        np.testing.assert_allclose(out.data, [10.0, 20.0])

    def test_straight_through_mask(self):
        x = parameter(np.array([1.0, 2.0], dtype=np.float32))
        out = ops.straight_through(
            x,
            np.zeros(2, dtype=np.float32),
            pass_mask=np.array([1.0, 0.0], dtype=np.float32),
        )
        out.backward(np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(x.grad, [1.0, 0.0])

    def test_straight_through_shape_mismatch(self):
        x = parameter(np.zeros(2, dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.straight_through(x, np.zeros(3, dtype=np.float32))


class TestLosses:
    def test_log_softmax_rows_normalise(self, rng):
        logits = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        out = ops.log_softmax(logits)
        sums = np.exp(out.data).sum(axis=1)
        np.testing.assert_allclose(sums, np.ones(4), rtol=1e-5)

    def test_cross_entropy_gradient(self, rng):
        logits = parameter(rng.normal(size=(5, 4)))
        labels = np.array([0, 1, 2, 3, 0])
        check(lambda t: ops.cross_entropy(t, labels), [logits])

    def test_cross_entropy_perfect_prediction_small(self):
        logits = parameter(np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        loss = ops.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_label_shape(self):
        logits = parameter(np.zeros((3, 2), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.cross_entropy(logits, np.array([0, 1]))

    def test_mse_gradient(self, rng):
        pred = parameter(rng.normal(size=(4,)))
        target = rng.normal(size=(4,)).astype(np.float32)
        check(lambda t: ops.mse(t, target), [pred])

    def test_mse_zero_at_target(self):
        target = np.array([1.0, 2.0], dtype=np.float32)
        assert ops.mse(parameter(target.copy()), target).item() == 0.0
