"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, ops, parameter

_floats = st.floats(-5.0, 5.0, width=32)


def _array(shape_strategy):
    return shape_strategy.flatmap(
        lambda shape: arrays(np.float32, shape, elements=_floats)
    )


_matrix = _array(st.tuples(st.integers(1, 5), st.integers(1, 5)))
_vector = _array(st.tuples(st.integers(1, 16)))


class TestAlgebraicIdentities:
    @given(_matrix)
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, data):
        a, b = Tensor(data), Tensor(data[::-1].copy())
        np.testing.assert_allclose(
            (a + b).data, (b + a).data, rtol=1e-6
        )

    @given(_matrix)
    @settings(max_examples=50, deadline=None)
    def test_double_negation(self, data):
        a = Tensor(data)
        np.testing.assert_array_equal((-(-a)).data, a.data)

    @given(_vector)
    @settings(max_examples=50, deadline=None)
    def test_exp_log_roundtrip(self, data):
        a = Tensor(np.abs(data) + 0.5)
        round_trip = ops.exp(ops.log(a))
        np.testing.assert_allclose(round_trip.data, a.data, rtol=1e-4)

    @given(_matrix)
    @settings(max_examples=50, deadline=None)
    def test_reshape_preserves_sum(self, data):
        a = Tensor(data)
        flat = ops.reshape(a, (data.size,))
        assert flat.data.sum() == np.float32(data.sum())

    @given(_matrix)
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, data):
        a = Tensor(data)
        np.testing.assert_array_equal(
            ops.transpose(ops.transpose(a)).data, a.data
        )


class TestGradientIdentities:
    @given(_vector)
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = parameter(data)
        ops.sum_(x).backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(data))

    @given(_vector)
    @settings(max_examples=50, deadline=None)
    def test_linear_combination_gradient(self, data):
        # d/dx sum(3x - 2x) = 1 elementwise, independent of x.
        x = parameter(data)
        (ops.sum_(x * 3.0) - ops.sum_(x * 2.0)).backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data), rtol=1e-5)

    @given(_matrix)
    @settings(max_examples=40, deadline=None)
    def test_mul_gradient_symmetry(self, data):
        a = parameter(data)
        b = parameter(data.copy())
        ops.sum_(a * b).backward()
        np.testing.assert_allclose(a.grad, b.grad, rtol=1e-6)

    @given(_vector)
    @settings(max_examples=40, deadline=None)
    def test_detach_blocks_gradient(self, data):
        x = parameter(data)
        y = ops.sum_(x.detach() * 2.0)
        if y.requires_grad:  # detached graph: never
            y.backward()
        assert x.grad is None


class TestConvolutionProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_conv_linearity(self, seed):
        rng = np.random.default_rng(seed)
        x1 = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        x2 = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
        lhs = ops.conv2d(Tensor(x1 + x2), w, padding=1).data
        rhs = (
            ops.conv2d(Tensor(x1), w, padding=1).data
            + ops.conv2d(Tensor(x2), w, padding=1).data
        )
        np.testing.assert_allclose(lhs, rhs, atol=1e-4)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_conv_zero_input_zero_output(self, seed):
        rng = np.random.default_rng(seed)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        assert ops.conv2d(x, w, padding=1).data.sum() == 0.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_maxpool_idempotent_on_constant(self, seed):
        rng = np.random.default_rng(seed)
        value = float(rng.uniform(-1, 1))
        x = Tensor(np.full((1, 1, 4, 4), value, dtype=np.float32))
        out = ops.maxpool2d(x, 2)
        np.testing.assert_allclose(out.data, np.full((1, 1, 2, 2), value))


class TestSoftmaxProperties:
    @given(_matrix)
    @settings(max_examples=50, deadline=None)
    def test_log_softmax_shift_invariant(self, data):
        a = Tensor(data)
        shifted = Tensor(data + 3.0)
        np.testing.assert_allclose(
            ops.log_softmax(a).data,
            ops.log_softmax(shifted).data,
            atol=1e-4,
        )

    @given(_matrix)
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_nonnegative(self, data):
        labels = np.zeros(data.shape[0], dtype=np.int64)
        loss = ops.cross_entropy(parameter(data), labels)
        assert loss.item() >= -1e-5
