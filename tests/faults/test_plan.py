"""The fault-plan grammar and its deterministic injection semantics."""

import numpy as np
import pytest

from repro.errors import FaultPlanError, ParallelError, ReproError
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_spec,
    in_worker_process,
    parse_fault_plan,
)
from repro.faults.plan import cached_plan


class TestGrammar:
    def test_targeted_entry_defaults_attempt_zero(self):
        plan = parse_fault_plan("crash@3")
        assert plan.seed == 0
        assert plan.entries == (FaultSpec(kind="crash", task=3, attempt=0),)

    def test_targeted_entry_with_attempt(self):
        (entry,) = parse_fault_plan("wedge@2:1").entries
        assert (entry.kind, entry.task, entry.attempt) == ("wedge", 2, 1)

    def test_duration_suffix(self):
        (entry,) = parse_fault_plan("wedge@0:0~2.5").entries
        assert entry.seconds == 2.5
        assert entry.duration() == 2.5

    def test_probabilistic_entry(self):
        (entry,) = parse_fault_plan("slow%0.25~0.01").entries
        assert entry.task is None
        assert entry.probability == 0.25
        assert entry.seconds == 0.01

    def test_seed_and_multiple_entries(self):
        plan = parse_fault_plan("seed=7, crash@0, wedge@1:2~9, corrupt%0.5")
        assert plan.seed == 7
        assert [entry.kind for entry in plan.entries] == [
            "crash",
            "wedge",
            "corrupt",
        ]

    def test_default_durations(self):
        assert parse_fault_plan("wedge@0").entries[0].duration() == 3600.0
        assert parse_fault_plan("slow@0").entries[0].duration() == 0.2
        assert parse_fault_plan("crash@0").entries[0].duration() == 0.0

    @pytest.mark.parametrize(
        "spec",
        [
            "explode@0",  # unknown kind
            "crash@x",  # non-integer task
            "crash@1:-2",  # negative attempt
            "crash@-1",  # negative task
            "crash%1.5",  # probability out of range
            "crash%maybe",  # non-numeric probability
            "wedge@0~soon",  # non-numeric duration
            "wedge@0~-1",  # negative duration
            "seed=xyz,crash@0",  # bad seed
            "seed=3",  # no fault entries
            "",  # empty plan
            "crash",  # neither @ nor %
        ],
    )
    def test_nonsense_rejected_typed(self, spec):
        with pytest.raises(FaultPlanError):
            parse_fault_plan(spec)

    def test_fault_plan_error_is_typed(self):
        assert issubclass(FaultPlanError, ParallelError)
        assert issubclass(FaultPlanError, ReproError)


class TestMatching:
    def test_targeted_matches_exact_coordinate_only(self):
        plan = parse_fault_plan("crash@2:1")
        assert plan.faults_for(2, 1)
        assert not plan.faults_for(2, 0)
        assert not plan.faults_for(1, 1)

    def test_probabilistic_draws_are_deterministic(self):
        plan = parse_fault_plan("seed=11,crash%0.3")
        first = [bool(plan.faults_for(t, a)) for t in range(40) for a in (0, 1)]
        second = [bool(plan.faults_for(t, a)) for t in range(40) for a in (0, 1)]
        assert first == second
        # A 30% plan over 80 coordinates fires some but not all.
        assert 0 < sum(first) < len(first)

    def test_probabilistic_rate_tracks_probability(self):
        plan = parse_fault_plan("seed=0,crash%0.5")
        fired = sum(bool(plan.faults_for(t, 0)) for t in range(400))
        assert 120 < fired < 280

    def test_seed_changes_the_draw_stream(self):
        fires = lambda plan: [
            bool(plan.faults_for(t, 0)) for t in range(64)
        ]
        assert fires(parse_fault_plan("seed=1,crash%0.4")) != fires(
            parse_fault_plan("seed=2,crash%0.4")
        )

    def test_kinds_draw_independent_streams(self):
        crash = parse_fault_plan("seed=5,crash%0.4")
        wedge = parse_fault_plan("seed=5,wedge%0.4")
        crash_fires = [bool(crash.faults_for(t, 0)) for t in range(64)]
        wedge_fires = [bool(wedge.faults_for(t, 0)) for t in range(64)]
        assert crash_fires != wedge_fires


class TestApply:
    def test_slow_fault_delays_then_falls_through(self):
        import time

        plan = parse_fault_plan("slow@0:0~0.05")
        started = time.monotonic()
        plan.apply_before(0, 0)
        assert time.monotonic() - started >= 0.05
        started = time.monotonic()
        plan.apply_before(1, 0)  # non-matching coordinate: no delay
        assert time.monotonic() - started < 0.05

    def test_corrupt_perturbs_logits_object(self):
        class Output:
            def __init__(self):
                self.logits = np.zeros((2, 3), dtype=np.float32)

        plan = parse_fault_plan("corrupt@0")
        clean = Output().logits.copy()
        corrupted = plan.apply_after(0, 0, Output())
        assert corrupted.logits.tobytes() != clean.tobytes()
        untouched = plan.apply_after(1, 0, Output())
        assert untouched.logits.tobytes() == clean.tobytes()

    def test_corrupt_perturbs_arrays_and_scalars(self):
        plan = parse_fault_plan("corrupt@0")
        array = np.arange(4)
        mutated = plan.apply_after(0, 0, array)
        assert not np.array_equal(mutated, np.arange(4))
        assert np.array_equal(array, np.arange(4))  # input not aliased
        assert plan.apply_after(0, 0, 41) == 42
        assert plan.apply_after(0, 0, ("odd",)) == "<corrupted-by-fault-plan>"


class TestEnvironment:
    def test_active_spec_reads_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert active_fault_spec() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "  ")
        assert active_fault_spec() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@0")
        assert active_fault_spec() == "crash@0"

    def test_parent_process_is_not_a_worker(self):
        # The test runner is the parent: injection must be off here, or
        # a crash fault would kill pytest itself.
        assert not in_worker_process()

    def test_cached_plan_parses_once(self):
        first = cached_plan("seed=3,crash@1")
        assert cached_plan("seed=3,crash@1") is first
        assert isinstance(first, FaultPlan)
