"""int8 midpoint tests: the scheme machinery generalises beyond int4."""

import numpy as np
import pytest

from repro.quant import INT4, INT8, convert, quantize_array
from repro.quant.schemes import QuantScheme


class TestInt8Conversion:
    def test_int8_closer_to_fp32_than_int4(self, tiny_trained_network, tiny_dataset):
        from repro.quant import FP32

        _, test = tiny_dataset
        fp32 = convert(tiny_trained_network, FP32)
        int8 = convert(tiny_trained_network, INT8)
        int4 = convert(tiny_trained_network, INT4)
        reference = fp32.forward(test.images[:32], 2).logits
        err8 = np.abs(int8.forward(test.images[:32], 2).logits - reference).mean()
        err4 = np.abs(int4.forward(test.images[:32], 2).logits - reference).mean()
        assert err8 <= err4

    def test_int8_weight_range(self, tiny_trained_network):
        int8 = convert(tiny_trained_network, INT8)
        for layer in int8.layers:
            assert np.abs(layer.weight_q).max() <= 127

    def test_int8_zeroes_fewer_weights_than_int4(self, tiny_trained_network):
        int8 = convert(tiny_trained_network, INT8)
        int4 = convert(tiny_trained_network, INT4)
        z8 = np.mean([l.zero_weight_fraction for l in int8.layers])
        z4 = np.mean([l.zero_weight_fraction for l in int4.layers])
        assert z8 <= z4

    def test_rounding_error_scales_with_bits(self, rng):
        w = rng.normal(size=(16, 64)).astype(np.float32)
        errors = {}
        for bits in (4, 6, 8, 12):
            scheme = QuantScheme(bits=bits)
            q, scale = quantize_array(w, scheme)
            from repro.quant import dequantize_array

            errors[bits] = np.abs(dequantize_array(q, scale) - w).mean()
        values = [errors[b] for b in (4, 6, 8, 12)]
        assert values == sorted(values, reverse=True)
