"""QAT wrapper and preparation tests."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import INT4, prepare_qat, strip_qat
from repro.quant.qat import QATConv2d, QATLinear, is_qat
from repro.quant.schemes import FP32
from repro.snn import Trainer, TrainingConfig, build_network
from repro.snn.layers import SpikingConv2d, SpikingLinear
from repro.tensor import Tensor


class TestWrappers:
    def test_conv_wrapper_type_check(self):
        with pytest.raises(QuantizationError):
            QATConv2d(SpikingLinear(4, 2, seed=0), INT4)

    def test_linear_wrapper_type_check(self):
        with pytest.raises(QuantizationError):
            QATLinear(SpikingConv2d(2, 2, seed=0), INT4)

    def test_conv_forward_shape(self, rng):
        layer = QATConv2d(SpikingConv2d(3, 4, seed=0), INT4)
        out = layer(Tensor(rng.random((2, 3, 5, 5)).astype(np.float32)))
        assert out.shape == (2, 4, 5, 5)

    def test_output_uses_quantized_weights(self, rng):
        inner = SpikingConv2d(2, 3, seed=0)
        wrapped = QATConv2d(inner, INT4)
        x = Tensor(rng.random((1, 2, 4, 4)).astype(np.float32))
        quantized_out = wrapped(x)
        float_out = inner(x)
        # int4 is coarse; outputs must differ unless weights were on-grid.
        assert not np.allclose(quantized_out.data, float_out.data)

    def test_parameters_are_latent_floats(self):
        inner = SpikingConv2d(2, 3, seed=0)
        wrapped = QATConv2d(inner, INT4)
        assert wrapped.parameters() == inner.parameters()

    def test_state_dict_delegates(self):
        inner = SpikingLinear(4, 2, seed=0)
        wrapped = QATLinear(inner, INT4)
        state = wrapped.state_dict()
        assert "weight" in state

    def test_fp32_wrapper_rejected(self):
        with pytest.raises(QuantizationError):
            QATConv2d(SpikingConv2d(2, 2, seed=0), FP32)


class TestPrepareStrip:
    def test_prepare_wraps_all_compute_layers(self):
        net = build_network("8C3-MP2-16C3-40", (3, 8, 8), 10, seed=0)
        prepare_qat(net, INT4)
        assert is_qat(net)
        kinds = [type(s.layer).__name__ for s in net.compute_stages()]
        assert kinds == ["QATConv2d", "QATConv2d", "QATLinear"]

    def test_prepare_twice_raises(self):
        net = build_network("8C3-10", (3, 8, 8), 10, seed=0)
        prepare_qat(net, INT4)
        with pytest.raises(QuantizationError):
            prepare_qat(net, INT4)

    def test_prepare_fp32_noop(self):
        net = build_network("8C3-10", (3, 8, 8), 10, seed=0)
        prepare_qat(net, FP32)
        assert not is_qat(net)

    def test_strip_restores(self):
        net = build_network("8C3-10", (3, 8, 8), 10, seed=0)
        prepare_qat(net, INT4)
        strip_qat(net)
        assert not is_qat(net)
        assert isinstance(net.compute_stages()[0].layer, SpikingConv2d)

    def test_qat_training_converges(self, tiny_dataset):
        train, _ = tiny_dataset
        net = build_network("8C3-MP2-20", (3, 8, 8), 10, seed=0)
        prepare_qat(net, INT4)
        config = TrainingConfig(epochs=3, lr=3e-3, seed=0)
        result = Trainer(net, config).fit(train.images, train.labels)
        assert result.epoch_losses[-1] < result.epoch_losses[0]
