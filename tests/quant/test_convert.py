"""Deployable-network conversion tests: the golden functional model."""

import os

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.quant import (
    DeployableNetwork,
    FP32,
    INT4,
    convert,
)
from repro.snn import build_network
from repro.snn.encoding import RateEncoder
from repro.tensor import no_grad


class TestConvertStructure:
    def test_layer_list(self, tiny_deployable):
        names = [layer.name for layer in tiny_deployable.layers]
        assert names == ["conv1_1", "conv2_1", "fc1"]

    def test_pool_attachment(self, tiny_deployable):
        pools = {l.name: l.pool_after for l in tiny_deployable.layers}
        assert pools == {"conv1_1": 2, "conv2_1": 2, "fc1": 1}

    def test_input_layer_flag(self, tiny_deployable):
        flags = [l.is_input_layer for l in tiny_deployable.layers]
        assert flags == [True, False, False]

    def test_fp32_has_no_scales(self, tiny_deployable):
        assert all(l.weight_scale is None for l in tiny_deployable.layers)

    def test_int4_has_scales_and_integers(self, tiny_deployable_int4):
        for layer in tiny_deployable_int4.layers:
            assert layer.weight_scale is not None
            assert np.abs(layer.weight_q).max() <= 7

    def test_describe(self, tiny_deployable):
        text = tiny_deployable.describe()
        assert "dense-core" in text
        assert "fp32" in text


class TestFunctionalEquivalence:
    def test_fp32_deploy_matches_eval_network(
        self, tiny_trained_network, tiny_deployable, tiny_dataset
    ):
        _, test = tiny_dataset
        images = test.images[:16]
        with no_grad():
            reference = tiny_trained_network.forward(images, 2)
        deployed = tiny_deployable.forward(images, 2)
        np.testing.assert_allclose(
            deployed.logits, reference.logits.data, atol=1e-3
        )
        assert deployed.stats.total_spikes == reference.stats.total_spikes

    def test_int4_accuracy_close_to_fp32(
        self, tiny_deployable, tiny_deployable_int4, tiny_dataset
    ):
        _, test = tiny_dataset
        fp32_acc = (
            tiny_deployable.predict(test.images, 2) == test.labels
        ).mean()
        int4_acc = (
            tiny_deployable_int4.predict(test.images, 2) == test.labels
        ).mean()
        # The paper's headline: accuracies within a few points.
        assert abs(fp32_acc - int4_acc) < 0.25

    def test_rate_encoder_runs(self, tiny_deployable, tiny_dataset):
        _, test = tiny_dataset
        out = tiny_deployable.forward(
            test.images[:8], 4, RateEncoder(seed=0)
        )
        assert out.logits.shape == (8, 10)

    def test_recording(self, tiny_deployable, tiny_dataset):
        _, test = tiny_dataset
        out = tiny_deployable.forward(test.images[:4], 2, record=True)
        assert set(out.spike_trains) == {"conv1_1", "conv2_1", "fc1"}
        assert len(out.spike_trains["conv1_1"]) == 2

    def test_shape_validation(self, tiny_deployable, rng):
        with pytest.raises(ShapeError):
            tiny_deployable.forward(
                rng.random((2, 3, 9, 9)).astype(np.float32), 2
            )

    def test_zero_weight_fraction_nonneg(self, tiny_deployable_int4):
        for layer in tiny_deployable_int4.layers:
            assert 0.0 <= layer.zero_weight_fraction <= 1.0

    def test_int4_zeroes_more_weights_than_fp32(
        self, tiny_deployable, tiny_deployable_int4
    ):
        fp32_zero = np.mean(
            [l.zero_weight_fraction for l in tiny_deployable.layers]
        )
        int4_zero = np.mean(
            [l.zero_weight_fraction for l in tiny_deployable_int4.layers]
        )
        assert int4_zero > fp32_zero


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_deployable_int4, tiny_dataset, tmp_path):
        _, test = tiny_dataset
        path = os.path.join(tmp_path, "model.npz")
        tiny_deployable_int4.save(path)
        restored = DeployableNetwork.load(path)
        a = tiny_deployable_int4.forward(test.images[:8], 2).logits
        b = restored.forward(test.images[:8], 2).logits
        np.testing.assert_array_equal(a, b)

    def test_load_preserves_scheme(self, tiny_deployable_int4, tmp_path):
        path = os.path.join(tmp_path, "model.npz")
        tiny_deployable_int4.save(path)
        restored = DeployableNetwork.load(path)
        assert restored.scheme.name == "int4"
        assert restored.lif.beta == tiny_deployable_int4.lif.beta


class TestPredictBatching:
    def test_batched_equals_single(self, tiny_deployable, tiny_dataset):
        _, test = tiny_dataset
        small = tiny_deployable.predict(test.images[:10], 2, batch_size=3)
        big = tiny_deployable.predict(test.images[:10], 2, batch_size=100)
        np.testing.assert_array_equal(small, big)
