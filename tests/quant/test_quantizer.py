"""Quantizer primitive tests, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.quant import INT4, INT8, fake_quant, dequantize_array, quantize_array
from repro.quant.schemes import FP32, QuantScheme, scheme_by_name
from repro.tensor import parameter


class TestSchemes:
    def test_int4_range(self):
        assert INT4.qmax == 7
        assert INT4.name == "int4"

    def test_int8_range(self):
        assert INT8.qmax == 127

    def test_fp32_is_float(self):
        assert FP32.is_float
        with pytest.raises(QuantizationError):
            _ = FP32.qmax

    def test_rejects_bad_bits(self):
        with pytest.raises(QuantizationError):
            QuantScheme(bits=1)
        with pytest.raises(QuantizationError):
            QuantScheme(bits=32)

    def test_rejects_asymmetric(self):
        with pytest.raises(QuantizationError):
            QuantScheme(bits=4, symmetric=False)

    def test_scheme_by_name(self):
        assert scheme_by_name("fp32").is_float
        assert scheme_by_name("int4").bits == 4
        assert scheme_by_name("INT8").bits == 8
        with pytest.raises(QuantizationError):
            scheme_by_name("bf16")


class TestQuantizeArray:
    def test_integers_in_range(self, rng):
        w = rng.normal(size=(8, 4)).astype(np.float32)
        q, _scale = quantize_array(w, INT4)
        assert q.max() <= 7 and q.min() >= -7
        assert q.dtype == np.int32

    def test_per_channel_scales(self, rng):
        w = rng.normal(size=(8, 4)).astype(np.float32)
        _, scale = quantize_array(w, INT4)
        assert scale.shape == (8,)

    def test_per_tensor_scale(self, rng):
        w = rng.normal(size=(8, 4)).astype(np.float32)
        scheme = QuantScheme(bits=4, per_channel=False)
        _, scale = quantize_array(w, scheme)
        assert scale.ndim == 0

    def test_max_weight_maps_to_qmax(self):
        w = np.array([[0.5, -1.0, 0.25]], dtype=np.float32)
        q, scale = quantize_array(w, INT4)
        assert abs(q).max() == 7
        assert scale[0] == pytest.approx(1.0 / 7)

    def test_zero_channel_safe(self):
        w = np.zeros((2, 3), dtype=np.float32)
        q, scale = quantize_array(w, INT4)
        assert np.all(q == 0)
        assert np.all(scale == 1.0)

    def test_fp32_scheme_rejected(self, rng):
        with pytest.raises(QuantizationError):
            quantize_array(rng.normal(size=(2, 2)), FP32)

    def test_small_weights_snap_to_zero(self):
        # The sparsification mechanism behind Fig. 1: weights below
        # scale/2 become exactly zero at int4.
        w = np.array([[1.0, 0.01, -0.02, 0.5]], dtype=np.float32)
        q, scale = quantize_array(w, INT4)
        deq = dequantize_array(q, scale)
        assert deq[0, 1] == 0.0
        assert deq[0, 2] == 0.0
        assert deq[0, 0] != 0.0


class TestRoundTrip:
    @given(
        arrays(
            np.float32,
            st.tuples(st.integers(1, 6), st.integers(1, 12)),
            elements=st.floats(-10, 10, width=32),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_int8_roundtrip_error_bounded(self, w):
        """|dequant(quant(w)) - w| <= scale/2 everywhere (int8)."""
        q, scale = quantize_array(w, INT8)
        deq = dequantize_array(q, scale)
        bound = np.broadcast_to(
            scale.reshape(-1, *([1] * (w.ndim - 1))) / 2, w.shape
        )
        assert np.all(np.abs(deq - w) <= bound + 1e-6)

    @given(
        arrays(
            np.float32,
            st.tuples(st.integers(1, 4), st.integers(1, 8)),
            elements=st.floats(-5, 5, width=32),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_int4_quantized_values_on_grid(self, w):
        """Every dequantized value is an integer multiple of its scale."""
        q, scale = quantize_array(w, INT4)
        deq = dequantize_array(q, scale)
        grid = deq / scale.reshape(-1, *([1] * (w.ndim - 1)))
        assert np.allclose(grid, np.round(grid), atol=1e-4)

    def test_idempotent(self, rng):
        w = rng.normal(size=(4, 6)).astype(np.float32)
        q1, s1 = quantize_array(w, INT4)
        deq = dequantize_array(q1, s1)
        q2, s2 = quantize_array(deq, INT4)
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_allclose(s1, s2, rtol=1e-5)


class TestFakeQuant:
    def test_forward_is_quantized(self, rng):
        w = parameter(rng.normal(size=(4, 4)))
        out = fake_quant(w, INT4)
        grid = out.data / np.maximum(
            np.abs(w.data).max(axis=1, keepdims=True) / 7, 1e-9
        )
        assert np.allclose(grid, np.round(grid), atol=1e-3)

    def test_gradient_straight_through(self, rng):
        w = parameter(rng.normal(size=(3, 3)))
        out = fake_quant(w, INT4)
        out.backward(np.ones((3, 3), dtype=np.float32))
        np.testing.assert_allclose(w.grad, np.ones((3, 3)))

    def test_fp32_passthrough(self, rng):
        w = parameter(rng.normal(size=(2, 2)))
        assert fake_quant(w, FP32) is w
