"""Power-of-two quantization scales and the integer-dequantization rule.

The integer runtime datapath (``repro.runtime.kernels``) is only as
trustworthy as the arithmetic contracts tested here: the pow2-scale
snap, the documented accumulator-dequantization rounding rule, and the
int32 overflow bound that gates every integer dispatch.
"""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import (
    INT4_P2,
    INT8_P2,
    INT_ACCUMULATION_LIMIT,
    QuantScheme,
    dequantize_accumulator,
    int_accumulation_bound,
    quantize_array,
)
from repro.quant.schemes import scheme_by_name


class TestPow2Scheme:
    def test_names(self):
        assert INT8_P2.name == "int8p2"
        assert INT4_P2.name == "int4p2"

    def test_scheme_by_name_round_trips(self):
        assert scheme_by_name("int8p2") == INT8_P2
        assert scheme_by_name("int4p2") == INT4_P2
        assert scheme_by_name("int8").pow2_scale is False

    def test_fp32_cannot_snap_scales(self):
        with pytest.raises(QuantizationError):
            QuantScheme(bits=None, pow2_scale=True)

    def test_scales_are_powers_of_two(self):
        rng = np.random.default_rng(7)
        weight = rng.standard_normal((8, 3, 3, 3)).astype(np.float32)
        _, scale = quantize_array(weight, INT8_P2)
        mantissa, _ = np.frexp(scale)
        assert np.all(mantissa == 0.5)  # exactly 2^e

    def test_scales_snap_up_never_down(self):
        """Snapping up keeps max|w| representable: |q| stays <= qmax."""
        rng = np.random.default_rng(8)
        weight = rng.standard_normal((8, 3, 3, 3)).astype(np.float32)
        q, scale = quantize_array(weight, INT8_P2)
        _, raw_scale = quantize_array(weight, scheme_by_name("int8"))
        assert np.all(scale >= raw_scale)
        assert np.all(scale <= 2.0 * raw_scale)
        assert np.abs(q).max() <= 127

    def test_pow2_dequantization_is_exact(self):
        """scale = 2^e makes q * scale an exact float32 for every int8 q
        -- the property the integer path's bit-exactness rests on."""
        rng = np.random.default_rng(9)
        weight = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        q, scale = quantize_array(weight, INT8_P2)
        deq = q.astype(np.float64) * scale.reshape(-1, 1, 1, 1).astype(
            np.float64
        )
        assert np.array_equal(deq.astype(np.float32).astype(np.float64), deq)


class TestDequantizeAccumulator:
    def test_matches_documented_rule(self):
        """fl(fl(acc) * scale) + bias, each op IEEE-754 round-to-even."""
        acc = np.array([[3, -1000000], [255, 7]], dtype=np.int32)
        scale = np.float32(0.03125)
        want = (acc.astype(np.float32) * scale).astype(np.float32)
        assert np.array_equal(dequantize_accumulator(acc, scale), want)
        bias = np.array([0.5, -0.25], dtype=np.float32)
        assert np.array_equal(
            dequantize_accumulator(acc, scale, bias),
            want + bias.reshape(-1, 1),
        )

    def test_per_channel_scale_broadcasts_on_axis0(self):
        acc = np.arange(6, dtype=np.int32).reshape(2, 3)
        scale = np.array([1.0, 0.5], dtype=np.float32)
        got = dequantize_accumulator(acc, scale)
        assert np.array_equal(got[0], acc[0].astype(np.float32))
        assert np.array_equal(got[1], acc[1].astype(np.float32) * 0.5)

    def test_result_is_float32(self):
        got = dequantize_accumulator(
            np.ones((2, 2), dtype=np.int32), np.float32(1.0)
        )
        assert got.dtype == np.float32


class TestAccumulationBound:
    def test_bound_is_worst_case_row_sum(self):
        q = np.array([[1, -2, 3], [100, 100, 100]], dtype=np.int8)
        assert int_accumulation_bound(q) == 300

    def test_empty_weight_bound_is_zero(self):
        assert int_accumulation_bound(np.zeros((0, 4), dtype=np.int8)) == 0

    def test_limit_is_float32_exact_integer_range(self):
        """2^24: the largest magnitude at which every int32 accumulator
        value casts to float32 without rounding -- the dequantization
        rule's exactness precondition."""
        assert INT_ACCUMULATION_LIMIT == 1 << 24
        below = np.float32(INT_ACCUMULATION_LIMIT)
        assert int(below) == INT_ACCUMULATION_LIMIT
        # One past the limit is the first integer float32 cannot hold.
        assert int(np.float32(INT_ACCUMULATION_LIMIT + 1)) != (
            INT_ACCUMULATION_LIMIT + 1
        )

    def test_deep_vgg9_int8_is_under_the_limit(self):
        """K = 2304 at int8: worst case 127 * 2304 << 2^24, so every
        VGG9 shape the paper quantizes admits the integer path."""
        assert 127 * 2304 < INT_ACCUMULATION_LIMIT
