"""Batch-norm folding tests: folding must be inference-lossless."""

import numpy as np
import pytest

from repro.quant.fold import fold_batchnorm
from repro.snn import build_network
from repro.tensor import Tensor, no_grad


class TestFoldBatchnorm:
    def _settled_network(self, rng, arch="8C3-MP2-20"):
        """A network whose BN running stats have seen some data."""
        net = build_network(arch, (3, 8, 8), num_classes=10, seed=0)
        with no_grad():
            for _ in range(30):
                net.forward(rng.random((16, 3, 8, 8)).astype(np.float32), 1)
        net.eval()
        return net

    def test_folded_conv_matches_conv_plus_bn(self, rng):
        net = self._settled_network(rng)
        folded = fold_batchnorm(net)
        stage = net.compute_stages()[0]
        x = Tensor(rng.random((4, 3, 8, 8)).astype(np.float32))
        with no_grad():
            reference = stage.bn(stage.layer(x)).data
        from repro.tensor import ops

        w, b = folded["conv1_1"]
        manual = ops.conv2d(x, Tensor(w), Tensor(b), padding=1).data
        np.testing.assert_allclose(manual, reference, atol=1e-4)

    def test_layers_without_bn_pass_through(self, rng):
        net = self._settled_network(rng)
        folded = fold_batchnorm(net)
        fc = net.compute_stages()[-1]
        w, b = folded[fc.name]
        np.testing.assert_array_equal(w, fc.layer.weight.data)
        np.testing.assert_array_equal(b, fc.layer.bias.data)

    def test_all_compute_layers_present(self, rng):
        net = self._settled_network(rng)
        folded = fold_batchnorm(net)
        assert set(folded) == {"conv1_1", "fc1"}

    def test_missing_bias_synthesised(self):
        net = build_network("8C3-10", (3, 8, 8), 10, seed=0)
        stage = net.compute_stages()[-1]
        stage.layer.bias = None
        folded = fold_batchnorm(net)
        w, b = folded["fc1"]
        assert b.shape == (10,)
        np.testing.assert_array_equal(b, np.zeros(10))

    def test_fold_sees_through_qat(self, rng):
        from repro.quant import INT4, prepare_qat

        net = self._settled_network(rng)
        before = fold_batchnorm(net)
        prepare_qat(net, INT4)
        after = fold_batchnorm(net)
        np.testing.assert_array_equal(
            before["conv1_1"][0], after["conv1_1"][0]
        )
