"""Sharded exact-mode simulator stats and memory-mapped shard payloads.

Two PR-4 satellites, both about what travels between processes:

* :meth:`HybridSimulator.run` with a shard geometry ships per-(layer,
  timestep) cycle *sums* (exact integers in float64) plus a slim
  functional output -- never the recorded trains -- and the merged
  report must be bit-identical to the unsharded run for deterministic
  encoders, at any shard geometry and worker count.
* Under the persistent :class:`WorkerService` the evaluation image array
  is written once to a temp ``.npy`` and tasks carry ``('mmap', path,
  start, stop)`` row slices; when the file cannot be created the
  payloads fall back inline. Either way the merged result is
  bit-identical to the serial fallback.
"""

import numpy as np
import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator, merge_cycle_sums
from repro.parallel import sharded_forward
from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.snn import build_network
from repro.snn.encoding import TtfsEncoder


@pytest.fixture(autouse=True)
def _pin_dispatch_policy():
    # Simulator notes embed dispatch counters; see the equivalence
    # suite's pin for why counters require the deterministic policy.
    with runtime_overrides(dispatch_policy="density"):
        yield


@pytest.fixture(scope="module")
def deployable():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=321
    )
    net.eval()
    return convert(net, FP32)


@pytest.fixture(scope="module")
def simulator(deployable):
    config = AcceleratorConfig(
        name="simshard", allocation=(1, 2, 2), scheme=FP32
    )
    return HybridSimulator(deployable, config)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(41)
    return rng.random((13, 3, 8, 8)).astype(np.float32)


def assert_reports_equal(got, want):
    for got_layer, want_layer in zip(got.layers, want.layers):
        assert got_layer.cycles == want_layer.cycles
        assert got_layer.compression_cycles == want_layer.compression_cycles
        assert got_layer.accumulation_cycles == want_layer.accumulation_cycles
        assert got_layer.activation_cycles == want_layer.activation_cycles
        assert got_layer.input_events == want_layer.input_events
        assert got_layer.output_spikes == want_layer.output_spikes
    assert got.latency_ms == want.latency_ms
    assert got.energy_mj == want.energy_mj
    assert got.samples == want.samples
    assert np.array_equal(got.logits, want.logits)
    assert got.accuracy == want.accuracy


class TestShardedSimulatorStats:
    @pytest.mark.parametrize(
        "geometry",
        [
            dict(shards=1),
            dict(shards=3),
            dict(shard_size=5),
            dict(shards=4, workers=1),
        ],
    )
    def test_serial_shard_geometries_bit_identical(
        self, simulator, images, geometry
    ):
        labels = np.arange(13) % 10
        plain = simulator.run(images, 2, labels=labels)
        sharded = simulator.run(images, 2, labels=labels, **geometry)
        assert_reports_equal(sharded, plain)

    def test_pooled_bit_identical_to_unsharded(self, simulator, images):
        labels = np.arange(13) % 10
        plain = simulator.run(images, 2, labels=labels)
        pooled = simulator.run(
            images, 2, labels=labels, shards=4, workers=2
        )
        assert_reports_equal(pooled, plain)

    def test_ttfs_encoder_pooled_bit_identical(self, simulator, images):
        encoder = TtfsEncoder(timesteps=4)
        plain = simulator.run(images, 4, TtfsEncoder(timesteps=4))
        pooled = simulator.run(
            images, 4, encoder, shards=3, workers=2
        )
        assert_reports_equal(pooled, plain)

    def test_merged_sums_are_exact_integers(self, simulator, images):
        """The merge contract: per-shard sums are integer-valued and
        add exactly, so splitting cannot perturb a single bit."""
        from repro.hw.simulator import sparse_layer_cycle_sums

        out = simulator.network.forward(images, 2, record=True)
        layer = simulator.network.layers[1]
        whole = sparse_layer_cycle_sums(
            layer, 2, out.spike_trains_stacked[layer.name],
            simulator.config.compression_chunk_bits,
        )
        parts = []
        for piece in (slice(0, 5), slice(5, 13)):
            part = sparse_layer_cycle_sums(
                layer, 2,
                out.spike_trains_stacked[layer.name][:, piece],
                simulator.config.compression_chunk_bits,
            )
            parts.append({layer.name: part})
        merged = merge_cycle_sums(parts)[layer.name]
        for key in ("compr", "accum", "events", "busy"):
            assert np.array_equal(merged[key], whole[key])
            assert np.array_equal(merged[key], np.round(merged[key]))
        assert float(merged["samples"]) == 13.0

    def test_dispatch_note_present_in_sharded_report(self, simulator, images):
        report = simulator.run(images, 2, shards=3, workers=2)
        assert any("runtime dispatch" in note for note in report.notes)


class TestMmapShardPayloads:
    def test_persistent_service_ships_mmap_slices(
        self, deployable, images, monkeypatch
    ):
        """Under the (default) persistent service the image array is
        shipped as one temp .npy plus row bounds -- and the merged run
        is bit-identical to the serial fallback."""
        import repro.parallel.shard as shard

        seen = {}
        original = shard.plan_task_images

        def spy(arr, slices):
            init_images, payloads, cleanup = original(arr, slices)
            seen["payloads"] = payloads
            return init_images, payloads, cleanup

        monkeypatch.setattr(shard, "plan_task_images", spy)
        serial = sharded_forward(deployable, images, 2, shards=4, workers=1)
        pooled = sharded_forward(deployable, images, 2, shards=4, workers=2)
        payloads = seen["payloads"]
        assert all(
            isinstance(p, tuple) and p[0] == "mmap" for p in payloads
        )
        assert [p[2:] for p in payloads] == [(0, 4), (4, 7), (7, 10), (10, 13)]
        # One shared file; cleaned up after the pooled call returned.
        paths = {p[1] for p in payloads}
        assert len(paths) == 1
        import os

        assert not os.path.exists(next(iter(paths)))
        assert np.array_equal(pooled.logits, serial.logits)
        assert pooled.stats.per_layer == serial.stats.per_layer

    def test_unwritable_tempfile_falls_back_inline(
        self, deployable, images, monkeypatch
    ):
        import repro.parallel.shard as shard

        def broken(*args, **kwargs):
            raise OSError("no temp space")

        monkeypatch.setattr(shard.tempfile, "mkstemp", broken)
        serial = sharded_forward(deployable, images, 2, shards=4, workers=1)
        pooled = sharded_forward(deployable, images, 2, shards=4, workers=2)
        assert np.array_equal(pooled.logits, serial.logits)
        assert pooled.stats.per_layer == serial.stats.per_layer

    def test_resolve_round_trips_all_payload_kinds(self, tmp_path):
        from repro.parallel.shard import resolve_task_images

        rng = np.random.default_rng(0)
        images = rng.random((6, 2, 3, 3)).astype(np.float32)
        # bounds into an inherited array
        got = resolve_task_images((1, 4), images)
        assert np.array_equal(got, images[1:4])
        # inline array
        assert np.array_equal(resolve_task_images(images[2:5], None), images[2:5])
        # memory-mapped row slice
        path = str(tmp_path / "imgs.npy")
        np.save(path, images)
        got = resolve_task_images(("mmap", path, 2, 6), None)
        assert np.array_equal(got, images[2:6])
        assert isinstance(got, np.ndarray) and not isinstance(
            got, np.memmap
        )
