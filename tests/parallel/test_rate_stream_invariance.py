"""Counter-stream rate coding: shard/worker/batch-geometry invariance.

The encoding stream is a pure function of ``(seed, global sample index,
timestep)`` (see :class:`repro.snn.encoding.RateEncoder`), which
upgrades rate coding from 'deterministic per geometry' to the same
guarantee direct/TTFS coding always had: byte-identical logits,
``SpikeStats`` and trains at *every* shard geometry, worker count and
batch split -- including against the unsharded forward. This suite is
the test-side twin of the ``scripts/check_parallel_determinism.py``
rate gate.
"""

import hashlib

import numpy as np
import pytest

from repro.parallel import sharded_forward
from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.snn import build_network
from repro.snn.encoding import RateEncoder
from repro.utils.rng import counter_rng


@pytest.fixture(autouse=True)
def _pin_dispatch_policy():
    """Counters are byte-compared against serial references here; pin
    the deterministic density policy (cost routing is wall-clock
    dependent by design and may only change counters, never results)."""
    with runtime_overrides(dispatch_policy="density"):
        yield


@pytest.fixture(scope="module")
def deployable():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=321
    )
    net.eval()
    return convert(net, FP32)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(17)
    return rng.random((13, 3, 8, 8)).astype(np.float32)


def assert_invariant_quantities_equal(got, want):
    """Everything that must not depend on the shard geometry."""
    assert np.array_equal(got.logits, want.logits)
    assert got.stats.per_layer == want.stats.per_layer
    assert got.stats.per_layer_timestep == want.stats.per_layer_timestep
    assert got.stats.samples == want.stats.samples
    assert got.stats.timesteps == want.stats.timesteps
    # Rate-coded inputs are binary, so even the input layer's totals
    # are exact integers -- geometry-invariant, unlike analog direct
    # coding's float sums.
    assert got.input_spike_totals == want.input_spike_totals


class TestGeometryInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_logits_and_stats_match_unsharded(
        self, deployable, images, shards, workers
    ):
        plain = deployable.forward(images, 4, RateEncoder(seed=11))
        merged = sharded_forward(
            deployable,
            images,
            4,
            RateEncoder(seed=11),
            shards=shards,
            workers=workers,
        )
        assert_invariant_quantities_equal(merged, plain)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_pooled_fully_identical_to_serial(
        self, deployable, images, shards
    ):
        """Per geometry, the full merged output -- dispatch counters
        and recorded trains included -- is worker-count independent."""
        serial = sharded_forward(
            deployable, images, 4, RateEncoder(seed=11),
            shards=shards, workers=1, record=True,
        )
        pooled = sharded_forward(
            deployable, images, 4, RateEncoder(seed=11),
            shards=shards, workers=2, record=True,
        )
        assert_invariant_quantities_equal(pooled, serial)
        for name, counter in serial.runtime_counters.items():
            assert pooled.runtime_counters[name].as_dict() == counter.as_dict()
        for name, series in serial.spike_trains.items():
            for t, train in enumerate(series):
                assert np.array_equal(pooled.spike_trains[name][t], train)

    def test_uneven_batch_splits_match(self, deployable, images):
        """Trains are per-sample pure functions: any contiguous split of
        the batch encodes identically once offsets are threaded."""
        encoder = RateEncoder(seed=3)
        whole = deployable.forward(images, 3, encoder, record=True)
        split_at = 5
        head = deployable.forward(
            images[:split_at], 3, encoder.for_samples(0), record=True
        )
        tail = deployable.forward(
            images[split_at:], 3, encoder.for_samples(split_at), record=True
        )
        for name, series in whole.spike_trains.items():
            for t, train in enumerate(series):
                rejoined = np.concatenate(
                    [head.spike_trains[name][t], tail.spike_trains[name][t]],
                    axis=0,
                )
                assert np.array_equal(rejoined, train)

    def test_legacy_loop_matches_runtime(self, deployable, images):
        """Both execution paths consume the identical encoded stream."""
        runtime = deployable.forward(images, 3, RateEncoder(seed=5))
        with runtime_overrides(enabled=False):
            legacy = deployable.forward(images, 3, RateEncoder(seed=5))
        assert np.array_equal(runtime.logits, legacy.logits)
        assert runtime.stats.per_layer == legacy.stats.per_layer


class TestResetReplayIdentity:
    def test_back_to_back_forwards_identical(self, deployable, images):
        """One encoder object, two passes: the second must match the
        first (and therefore a fresh process) -- the reset() fix."""
        encoder = RateEncoder(seed=9)
        first = deployable.forward(images, 3, encoder)
        second = deployable.forward(images, 3, encoder)
        assert np.array_equal(first.logits, second.logits)
        assert first.stats.per_layer == second.stats.per_layer

    def test_shared_encoder_matches_fresh_encoder(self, deployable, images):
        encoder = RateEncoder(seed=9)
        deployable.forward(images, 3, encoder)  # draw 'mid-stream'
        reused = deployable.forward(images, 3, encoder)
        fresh = deployable.forward(images, 3, RateEncoder(seed=9))
        assert np.array_equal(reused.logits, fresh.logits)

    def test_encode_is_pure_per_coordinate(self, images):
        encoder = RateEncoder(seed=4)
        a = encoder.encode(images, 2).data
        encoder.encode(images, 0)  # unrelated draws change nothing
        b = encoder.encode(images, 2).data
        np.testing.assert_array_equal(a, b)

    def test_reset_is_identity(self, images):
        encoder = RateEncoder(seed=4)
        a = encoder.encode(images, 1).data
        encoder.reset()
        b = encoder.encode(images, 1).data
        np.testing.assert_array_equal(a, b)


class TestOffsetComposition:
    def test_for_samples_composes_additively(self, images):
        encoder = RateEncoder(seed=2)
        direct = encoder.for_samples(7)
        chained = encoder.for_samples(3).for_samples(4)
        np.testing.assert_array_equal(
            direct.encode(images, 1).data, chained.encode(images, 1).data
        )

    def test_offset_rows_match_global_stream(self, images):
        encoder = RateEncoder(seed=2)
        whole = encoder.encode(images, 0).data
        window = encoder.for_samples(6).encode(images[6:10], 0).data
        np.testing.assert_array_equal(window, whole[6:10])

    def test_zero_offset_returns_self(self):
        encoder = RateEncoder(seed=2)
        assert encoder.for_samples(0) is encoder

    def test_signature_excludes_offset(self):
        encoder = RateEncoder(seed=2)
        assert (
            encoder.for_samples(5).stream_signature()
            == encoder.stream_signature()
        )
        assert (
            RateEncoder(seed=3).stream_signature()
            != encoder.stream_signature()
        )


class TestPinnedVectors:
    """The stream must never drift -- across numpy versions, platforms
    or refactors. Philox is a fixed, documented algorithm and numpy
    guarantees bit-generator stream stability, so these exact values
    are a contract; if one of these fails, every persisted rate-coded
    result (and the cross-geometry byte gates) silently changed
    meaning."""

    def test_counter_rng_pinned_doubles(self):
        np.testing.assert_array_equal(
            counter_rng(0, 0, 0).random(4),
            np.array([
                0.4587123554945268,
                0.7033469453084308,
                0.3378111424709075,
                0.6206260745511609,
            ]),
        )
        np.testing.assert_array_equal(
            counter_rng(123, 5, 2).random(4),
            np.array([
                0.3790738147290835,
                0.4761453621579871,
                0.3565456470682923,
                0.5291968486433969,
            ]),
        )
        # Adjacent coordinates are distinct streams, not shifted copies.
        np.testing.assert_array_equal(
            counter_rng(0, 1, 0).random(4),
            np.array([
                0.35100884375656427,
                0.7873301842654647,
                0.27170249342402175,
                0.4920570839831906,
            ]),
        )

    def test_rate_encoder_pinned_spike_pattern(self):
        images = (
            np.arange(2 * 1 * 3 * 3, dtype=np.float32).reshape(2, 1, 3, 3) % 9
        ) / 9.0
        encoder = RateEncoder(seed=7)
        frames = np.stack(
            [encoder.encode(images, t).data for t in range(3)]
        )
        assert frames.dtype == np.float32
        assert (
            hashlib.sha256(frames.tobytes()).hexdigest()
            == "b66549829967170167a57cb52307ac5cc3c6424fa59d490957b254fa4f69defc"
        )
        expected_t0 = np.array(
            [0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 0, 1, 1],
            dtype=np.float32,
        ).reshape(2, 1, 3, 3)
        np.testing.assert_array_equal(frames[0], expected_t0)

    def test_counter_rng_rejects_bad_coordinates(self):
        with pytest.raises(ValueError):
            counter_rng(0, 1, 2, 3, 4)
        with pytest.raises(ValueError):
            counter_rng(0, -1)


class TestVectorisedUniforms:
    """``counter_uniforms`` is a batched reimplementation of numpy's
    Philox4x64-10 -- it must be byte-identical to ``counter_rng`` (and
    therefore to every pinned stream above) at any coordinate."""

    def test_matches_counter_rng_bytes(self):
        from repro.utils.rng import counter_uniforms

        cases = [
            (0, [(0, 0), (1, 0), (0, 1)], 4),
            (123, [(5, 2)], 7),
            (0xDEADBEEF, [(2**40, 2**33, 5)], 129),
            (7, [(i, t) for i in range(6) for t in range(3)], 27),
        ]
        for seed, coords, n in cases:
            got = counter_uniforms(seed, coords, n)
            want = np.stack(
                [counter_rng(seed, *c).random(n) for c in coords]
            )
            np.testing.assert_array_equal(got, want)

    def test_empty_inputs(self):
        from repro.utils.rng import counter_uniforms

        assert counter_uniforms(0, [], 4).shape == (0, 4)
        assert counter_uniforms(0, [(0, 0)], 0).shape == (1, 0)

    def test_rejects_bad_coordinates(self):
        from repro.utils.rng import counter_uniforms

        with pytest.raises(ValueError):
            counter_uniforms(0, [(1, 2, 3, 4)], 4)
        with pytest.raises(ValueError):
            counter_uniforms(0, [(-1,)], 4)
