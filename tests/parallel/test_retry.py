"""The self-healing executor: retry, backoff, quarantine, fault plans."""

import os
import time

import numpy as np
import pytest

from repro.errors import ConfigError, PoisonTaskError
from repro.faults import FAULT_PLAN_ENV
from repro.parallel import (
    PERSISTENT_POOL_ENV,
    RetryPolicy,
    resolve_retry_policy,
    retry_stats,
    run_tasks,
    sharded_forward,
    shutdown_worker_service,
)
from repro.parallel.retry import (
    RETRY_BACKOFF_MS_ENV,
    RETRY_MAX_ATTEMPTS_ENV,
    RETRY_TASK_TIMEOUT_MS_ENV,
    reset_retry_stats,
)
from repro.quant import FP32, convert
from repro.snn import build_network
from repro.snn.encoding import RateEncoder

#: A policy with no sleeps: fault-plan tests retry in a tight loop.
FAST = dict(backoff_ms=0.0, backoff_max_ms=0.0)


def _square(x):
    return x * x


@pytest.fixture(scope="module")
def deployable():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=77
    )
    net.eval()
    return convert(net, FP32)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(23)
    return rng.random((8, 3, 8, 8)).astype(np.float32)


@pytest.fixture(autouse=True)
def _fresh_pool_and_no_ambient_plan(monkeypatch):
    """Each test starts with no fault plan and ends with no warm pool
    (fault plans must never leak into other test modules' pools). The
    shared service's circuit breaker is pinned out of the way: this
    module's repeated induced crashes would otherwise open it, and an
    open breaker degrades to inline execution -- where injection is off
    by design and nothing under test would run."""
    from repro.parallel import CircuitBreaker, shared_service

    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    monkeypatch.setattr(
        shared_service(), "breaker", CircuitBreaker(threshold=10000)
    )
    shutdown_worker_service()
    yield
    shutdown_worker_service()


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_ms": -1.0},
            {"backoff_max_ms": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"task_timeout_s": 0.0},
        ],
    )
    def test_nonsense_rejected_typed(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(RETRY_MAX_ATTEMPTS_ENV, "5")
        monkeypatch.setenv(RETRY_BACKOFF_MS_ENV, "10")
        monkeypatch.setenv(RETRY_TASK_TIMEOUT_MS_ENV, "1500")
        policy = resolve_retry_policy()
        assert policy.max_attempts == 5
        assert policy.backoff_ms == 10.0
        assert policy.task_timeout_s == 1.5

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(RETRY_MAX_ATTEMPTS_ENV, "5")
        assert resolve_retry_policy(max_attempts=2).max_attempts == 2

    def test_bad_env_rejected_typed(self, monkeypatch):
        monkeypatch.setenv(RETRY_MAX_ATTEMPTS_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_retry_policy()


class TestBackoffDeterminism:
    def test_same_coordinate_same_delay(self):
        policy = RetryPolicy(seed=3)
        assert policy.backoff_delay_s(4, 2) == policy.backoff_delay_s(4, 2)

    def test_jitter_stays_in_band_and_grows_with_attempt(self):
        policy = RetryPolicy(
            backoff_ms=100.0, backoff_factor=2.0, backoff_max_ms=10000.0,
            jitter=0.5,
        )
        for attempt, base in [(1, 0.1), (2, 0.2), (3, 0.4)]:
            delay = policy.backoff_delay_s(0, attempt)
            assert base * 0.5 <= delay <= base * 1.5

    def test_cap_applies(self):
        policy = RetryPolicy(
            backoff_ms=100.0, backoff_max_ms=150.0, jitter=0.0
        )
        assert policy.backoff_delay_s(0, 5) == pytest.approx(0.15)

    def test_tasks_decorrelated(self):
        policy = RetryPolicy(jitter=0.5)
        delays = {policy.backoff_delay_s(task, 1) for task in range(8)}
        assert len(delays) > 1


class TestCrashRecovery:
    def test_injected_crash_recovers_with_identical_results(self):
        reset_retry_stats()
        clean = run_tasks(
            _square, list(range(6)), workers=2, retry=RetryPolicy(**FAST)
        )
        assert clean == [x * x for x in range(6)]
        os.environ[FAULT_PLAN_ENV] = "crash@1:0"
        try:
            healed = run_tasks(
                _square, list(range(6)), workers=2, retry=RetryPolicy(**FAST)
            )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        assert healed == clean
        stats = retry_stats()
        assert stats.retries >= 1
        assert stats.recovered_calls == 1
        assert stats.quarantined == 0

    def test_sharded_forward_retried_bytes_identical(
        self, deployable, images
    ):
        """The ISSUE's core gate, in miniature: a rate-coded sharded
        forward that loses a worker mid-call and retries produces the
        byte-identical merged output of a fault-free run."""
        clean = sharded_forward(
            deployable, images, 2, RateEncoder(seed=5), shard_size=2,
            workers=2, retry=RetryPolicy(**FAST),
        )
        shutdown_worker_service()
        os.environ[FAULT_PLAN_ENV] = "crash@0:0"
        try:
            healed = sharded_forward(
                deployable, images, 2, RateEncoder(seed=5), shard_size=2,
                workers=2, retry=RetryPolicy(**FAST),
            )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        assert healed.logits.tobytes() == clean.logits.tobytes()
        assert healed.stats.per_layer == clean.stats.per_layer
        assert healed.input_spike_totals == clean.input_spike_totals

    def test_per_call_backend_recovers_too(self, monkeypatch):
        monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@2:0")
        healed = run_tasks(
            _square, list(range(5)), workers=2, retry=RetryPolicy(**FAST)
        )
        assert healed == [x * x for x in range(5)]

    def test_corrupt_fault_proves_the_injection_seam(self):
        """A ``corrupt`` fault visibly changes a result -- evidence the
        byte-compare gates would catch silent corruption."""
        os.environ[FAULT_PLAN_ENV] = "corrupt@1"
        try:
            values = run_tasks(
                _square, [1, 2, 3], workers=2, retry=RetryPolicy(**FAST)
            )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        assert values == [1, 5, 9]  # task 1: 4 + 1

    def test_no_retry_keeps_legacy_semantics(self):
        """``retry=None`` stays the historical fail-the-call path: no
        task tagging, no fault-plan seam, no quarantine."""
        os.environ[FAULT_PLAN_ENV] = "corrupt@1"
        try:
            values = run_tasks(_square, [1, 2, 3], workers=2)
        finally:
            del os.environ[FAULT_PLAN_ENV]
        assert values == [1, 4, 9]


class TestWedgeRecovery:
    def test_wedged_task_recovers_within_task_timeout(self):
        policy = RetryPolicy(task_timeout_s=1.0, **FAST)
        os.environ[FAULT_PLAN_ENV] = "wedge@1:0~30"
        started = time.monotonic()
        try:
            values = run_tasks(
                _square, list(range(4)), workers=2, retry=policy
            )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        assert values == [x * x for x in range(4)]
        assert time.monotonic() - started < 15.0


class TestPoisonQuarantine:
    def test_three_strike_poison_raises_with_partials(self):
        reset_retry_stats()
        os.environ[FAULT_PLAN_ENV] = "crash@0:0,crash@0:1,crash@0:2"
        try:
            with pytest.raises(PoisonTaskError) as excinfo:
                run_tasks(
                    _square,
                    list(range(4)),
                    workers=2,
                    retry=RetryPolicy(max_attempts=3, **FAST),
                )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        err = excinfo.value
        assert err.quarantined == [0]
        assert err.results[0] is None
        assert err.results[1:] == [1, 4, 9]
        assert err.attempts == {0: 3}
        assert set(err.fingerprints) == {0}
        assert len(err.fingerprints[0]) == 64  # sha256 hex
        assert retry_stats().quarantined == 1

    def test_max_attempts_one_disables_retry(self):
        os.environ[FAULT_PLAN_ENV] = "crash@1:0"
        try:
            with pytest.raises(PoisonTaskError) as excinfo:
                run_tasks(
                    _square,
                    [5, 6],
                    workers=2,
                    retry=RetryPolicy(max_attempts=1, **FAST),
                )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        assert excinfo.value.quarantined == [1]

    def test_innocent_neighbours_survive_isolation(self):
        """Tasks that merely shared a dying pool are not blamed: every
        non-poison task completes and is attached to the error."""
        os.environ[FAULT_PLAN_ENV] = (
            "crash@3:0,crash@3:1"
        )
        try:
            with pytest.raises(PoisonTaskError) as excinfo:
                run_tasks(
                    _square,
                    list(range(8)),
                    workers=2,
                    retry=RetryPolicy(max_attempts=2, **FAST),
                )
        finally:
            del os.environ[FAULT_PLAN_ENV]
        err = excinfo.value
        assert err.quarantined == [3]
        survivors = [
            err.results[index] for index in range(8) if index != 3
        ]
        assert survivors == [x * x for x in range(8) if x != 3]


class TestSerialFallbackSafety:
    def test_serial_fallback_never_injects(self, monkeypatch):
        """workers=1 executes inline in the parent, where a crash fault
        would kill the caller -- injection must be off by design."""
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@0:0")
        values = run_tasks(
            _square, [1, 2, 3], workers=1, retry=RetryPolicy(**FAST)
        )
        assert values == [1, 4, 9]

    def test_unparsable_plan_fails_fast_in_parent(self, monkeypatch):
        from repro.errors import FaultPlanError

        monkeypatch.setenv(FAULT_PLAN_ENV, "explode@0")
        with pytest.raises(FaultPlanError):
            run_tasks(
                _square, [1, 2, 3], workers=2, retry=RetryPolicy(**FAST)
            )
