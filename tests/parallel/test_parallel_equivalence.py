"""Runtime equivalence of the sharded/pooled execution subsystem.

The parallel layer is a pure scheduling layer: every test here asserts
*exact* equality against the serial reference -- merged ``SpikeStats``,
``LayerCounters``, logits, input totals, recorded trains, experiment
tables and analytic sweep reports must not differ by a single bit.
"""

import numpy as np
import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.parallel import sharded_forward, workers_override
from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.snn import build_network
from repro.snn.encoding import RateEncoder, TtfsEncoder


@pytest.fixture(autouse=True)
def _pin_dispatch_policy():
    """Dispatch counters are byte-compared against the serial reference
    here, and cost-model routing is wall-clock dependent by design (the
    *results* are dispatch-invariant; the counters are not). Pin the
    deterministic density policy so counter equality is meaningful."""
    with runtime_overrides(dispatch_policy="density"):
        yield


@pytest.fixture(scope="module")
def deployable():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=321
    )
    net.eval()
    return convert(net, FP32)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(17)
    return rng.random((13, 3, 8, 8)).astype(np.float32)


def assert_stats_equal(got, want):
    assert got.per_layer == want.per_layer
    assert got.per_layer_timestep == want.per_layer_timestep
    assert got.samples == want.samples
    assert got.timesteps == want.timesteps


def assert_outputs_equal(got, want, trains=False, counters=False, totals=True):
    assert np.array_equal(got.logits, want.logits)
    assert_stats_equal(got.stats, want.stats)
    if totals:
        assert got.input_spike_totals == want.input_spike_totals
    if counters:
        assert set(got.runtime_counters) == set(want.runtime_counters)
        for name, counter in want.runtime_counters.items():
            assert got.runtime_counters[name].as_dict() == counter.as_dict()
    if trains:
        assert set(got.spike_trains) == set(want.spike_trains)
        for name, series in want.spike_trains.items():
            for t, train in enumerate(series):
                assert np.array_equal(got.spike_trains[name][t], train)


class TestShardedVsUnsharded:
    """Guarantee 2: deterministic encodings are shard-geometry invariant."""

    @pytest.mark.parametrize("timesteps", [2, 4])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("runtime_enabled", [True, False])
    def test_stats_and_logits_match_plain_forward(
        self, deployable, images, timesteps, shards, runtime_enabled
    ):
        with runtime_overrides(enabled=runtime_enabled):
            plain = deployable.forward(images, timesteps)
            merged = sharded_forward(
                deployable, images, timesteps, shards=shards, workers=1
            )
        assert np.array_equal(merged.logits, plain.logits)
        assert_stats_equal(merged.stats, plain.stats)

    def test_single_shard_is_fully_identical(self, deployable, images):
        plain = deployable.forward(images, 2, record=True)
        merged = sharded_forward(
            deployable, images, 2, shards=1, workers=1, record=True
        )
        assert_outputs_equal(merged, plain, trains=True, counters=True)

    def test_recorded_trains_concatenate_in_sample_order(
        self, deployable, images
    ):
        plain = deployable.forward(images, 2, record=True)
        merged = sharded_forward(
            deployable, images, 2, shards=4, workers=1, record=True
        )
        # The *analog* input layer's float total is a function of the
        # shard geometry (float addition is not associative), so it is
        # excluded here; every spike-domain quantity must match exactly.
        assert_outputs_equal(merged, plain, trains=True, totals=False)
        binary_totals = {
            name: value
            for name, value in plain.input_spike_totals.items()
            if name != "conv1_1"
        }
        for name, value in binary_totals.items():
            assert merged.input_spike_totals[name] == value
        for name, stacked in plain.spike_trains_stacked.items():
            assert np.array_equal(merged.spike_trains_stacked[name], stacked)


class TestPooledVsSerial:
    """Guarantee 1: worker count never changes a merged result."""

    @pytest.mark.parametrize("timesteps", [2, 4])
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("runtime_enabled", [True, False])
    def test_pooled_bit_identical_to_serial_fallback(
        self, deployable, images, timesteps, shards, runtime_enabled
    ):
        with runtime_overrides(enabled=runtime_enabled):
            serial = sharded_forward(
                deployable, images, timesteps, shards=shards, workers=1,
                record=True,
            )
            pooled = sharded_forward(
                deployable, images, timesteps, shards=shards, workers=2,
                record=True,
            )
        assert_outputs_equal(
            pooled, serial, trains=True, counters=runtime_enabled
        )

    def test_workers_resolved_from_override(self, deployable, images):
        serial = sharded_forward(deployable, images, 2, shards=2, workers=1)
        with workers_override(2):
            pooled = sharded_forward(deployable, images, 2, shards=2)
        assert_outputs_equal(pooled, serial)

    def test_forced_event_counters_merge_exactly(self, deployable, images):
        with runtime_overrides(force_path="event"):
            serial = sharded_forward(
                deployable, images, 2, shards=2, workers=1
            )
            pooled = sharded_forward(
                deployable, images, 2, shards=2, workers=2
            )
        assert_outputs_equal(pooled, serial, counters=True)
        # Workers inherit the parent's force_path override: every
        # non-input conv layer-timestep of every shard must have gone
        # event-driven.
        assert pooled.runtime_counters["conv2_1"].dense_steps == 0
        assert pooled.runtime_counters["conv2_1"].event_steps == 2 * 2

    def test_rate_coding_worker_count_invariant(self, deployable, images):
        """Counter-stream rate coding: pooled and serial draw identical
        streams -- and both match the unsharded forward (guarantee 2;
        the full geometry sweep lives in test_rate_stream_invariance)."""
        serial = sharded_forward(
            deployable, images, 4, RateEncoder(seed=11), shards=4, workers=1
        )
        pooled = sharded_forward(
            deployable, images, 4, RateEncoder(seed=11), shards=4, workers=2
        )
        assert_outputs_equal(pooled, serial)
        plain = deployable.forward(images, 4, RateEncoder(seed=11))
        assert np.array_equal(pooled.logits, plain.logits)
        assert_stats_equal(pooled.stats, plain.stats)

    def test_ttfs_encoder_shard_invariant(self, deployable, images):
        plain = deployable.forward(images, 4, TtfsEncoder(timesteps=4))
        merged = sharded_forward(
            deployable, images, 4, TtfsEncoder(timesteps=4), shards=3,
            workers=2,
        )
        assert np.array_equal(merged.logits, plain.logits)
        assert_stats_equal(merged.stats, plain.stats)

    def test_spawn_start_method_bit_identical(
        self, deployable, images, monkeypatch
    ):
        """The spawn path (macOS default; ships shard slices per task
        instead of relying on fork inheritance) must merge identically."""
        serial = sharded_forward(deployable, images, 2, shards=2, workers=1)
        monkeypatch.setattr(
            "repro.parallel.pool.pool_start_method", lambda: "spawn"
        )
        pooled = sharded_forward(deployable, images, 2, shards=2, workers=2)
        assert_outputs_equal(pooled, serial, counters=True)

    def test_model_path_workers_match_in_memory_model(
        self, deployable, images, tmp_path, monkeypatch
    ):
        """Workers cold-starting from the .npz + .plan.npz sidecar must
        produce exactly what the in-memory model produces. Forced onto
        the spawn path -- under fork the live object is inherited and
        the disk payload is deliberately never used."""
        from repro.runtime import plan_deployable, plan_sidecar_path, save_plan

        model_path = str(tmp_path / "model.npz")
        deployable.save(model_path)
        save_plan(
            plan_deployable(deployable),
            plan_sidecar_path(model_path),
            model_digest=deployable.weights_digest(),
        )
        in_memory = sharded_forward(
            deployable, images, 2, shards=2, workers=2
        )
        monkeypatch.setattr(
            "repro.parallel.pool.pool_start_method", lambda: "spawn"
        )
        cold_start = sharded_forward(
            deployable, images, 2, shards=2, workers=2, model_path=model_path
        )
        assert_outputs_equal(cold_start, in_memory, counters=True)


class TestAnalyticSweepEquivalence:
    """Batched run_from_counts vectorization is bit-identical."""

    @pytest.fixture(scope="class")
    def simulator(self, deployable):
        config = AcceleratorConfig(
            name="sweep-eq", allocation=(1, 2, 2), scheme=FP32
        )
        return HybridSimulator(deployable, config)

    @pytest.fixture(scope="class")
    def events_batch(self):
        rng = np.random.default_rng(23)
        return [
            {
                "conv2_1": float(rng.integers(0, 700)),
                "fc1": float(rng.integers(0, 150)),
            }
            for _ in range(9)
        ]

    @pytest.mark.parametrize("timesteps", [2, 4])
    def test_batch_matches_scalar_loop(
        self, simulator, events_batch, timesteps
    ):
        scalar = [
            simulator.run_from_counts(events, timesteps)
            for events in events_batch
        ]
        batched = simulator.run_from_counts_batch(events_batch, timesteps)
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert got.latency_ms == want.latency_ms
            assert got.energy_mj == want.energy_mj
            assert got.dynamic_power_w == want.dynamic_power_w
            for got_layer, want_layer in zip(got.layers, want.layers):
                assert got_layer.cycles == want_layer.cycles
                assert (
                    got_layer.compression_cycles
                    == want_layer.compression_cycles
                )
                assert (
                    got_layer.accumulation_cycles
                    == want_layer.accumulation_cycles
                )
                assert got_layer.input_events == want_layer.input_events

    def test_output_spikes_forwarded_per_point(self, simulator, events_batch):
        spikes = [{"conv2_1": float(10 * j)} for j in range(len(events_batch))]
        batched = simulator.run_from_counts_batch(events_batch, 2, spikes)
        for j, report in enumerate(batched):
            assert report.total_spikes_per_image == float(10 * j)

    def test_empty_batch(self, simulator):
        assert simulator.run_from_counts_batch([], 2) == []

    def test_missing_layer_raises(self, simulator):
        from repro.errors import HardwareModelError

        with pytest.raises(HardwareModelError):
            simulator.run_from_counts_batch([{"conv2_1": 5.0}], 2)


class TestSweepPoolEquivalence:
    def test_budget_sweep_pooled_matches_serial(self, deployable):
        from repro.workload import sweep_budgets, workloads_from_network

        events = {"conv2_1": 200.0, "fc1": 40.0}
        workloads = workloads_from_network(deployable, events, timesteps=2)
        budgets = [4, 8, 16, 32, 64]
        serial = sweep_budgets(workloads, budgets, workers=1)
        pooled = sweep_budgets(workloads, budgets, workers=2)
        assert [p.budget for p in pooled] == [p.budget for p in serial]
        for got, want in zip(pooled, serial):
            assert got.result == want.result

    def test_invalid_worker_count_rejected(self, deployable):
        from repro.errors import ConfigError
        from repro.workload import sweep_budgets, workloads_from_network

        events = {"conv2_1": 200.0, "fc1": 40.0}
        workloads = workloads_from_network(deployable, events, timesteps=2)
        with pytest.raises(ConfigError):
            sweep_budgets(workloads, [4, 8], workers=0)
