"""Experiment tables must be byte-identical under pooled execution."""

import pytest

from repro.experiments import fig1
from repro.experiments.context import ExperimentContext
from repro.parallel import workers_override


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return str(tmp_path_factory.mktemp("parallel-artifacts"))


class TestFig1Pooled:
    @pytest.fixture(scope="class")
    def serial_result(self, workspace):
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        with workers_override(1):
            return fig1.run(ctx, datasets=("svhn",))

    def test_pooled_table_bytes_equal_serial(self, serial_result, workspace):
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        with workers_override(2):
            pooled = fig1.run(ctx, datasets=("svhn",))
        assert pooled.render() == serial_result.render()

    def test_pooled_run_is_deterministic(self, serial_result, workspace):
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        with workers_override(2):
            first = fig1.run(ctx, datasets=("svhn",))
            second = fig1.run(ctx, datasets=("svhn",))
        assert first.render() == second.render()

    def test_model_and_plan_artifacts_cached(self, serial_result, workspace):
        import os

        from repro.runtime import plan_sidecar_path

        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        for scheme in ("fp32", "int4"):
            path = ctx.model_path(ctx.model_key("svhn", scheme, "direct"))
            assert os.path.exists(path)
            assert os.path.exists(plan_sidecar_path(path))
