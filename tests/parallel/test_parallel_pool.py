"""The deterministic pool executor and worker-count resolution."""

import os

import pytest

from repro.errors import ConfigError, ParallelError
from repro.parallel import (
    WORKERS_ENV,
    effective_workers,
    resolve_workers,
    run_tasks,
    shard_slices,
    workers_override,
)
from repro.runtime import runtime_config, runtime_overrides


def _square(x):
    return x * x


def _worker_env(_):
    return {
        "workers_env": os.environ.get(WORKERS_ENV),
        "resolved": resolve_workers(),
        "pid": os.getpid(),
    }


def _runtime_threshold(_):
    return runtime_config().dispatch_threshold


def _boom(x):
    if x == 2:
        raise ValueError("cell exploded")
    return x


_INIT_STATE = {}


def _remember(value):
    _INIT_STATE["value"] = value


def _read_state(_):
    return _INIT_STATE.get("value")


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        with workers_override(2):
            assert resolve_workers() == 2
        assert resolve_workers() == 5

    @pytest.mark.parametrize("bad", [0, -1, "x"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        with pytest.raises(ConfigError):
            resolve_workers(bad)
        monkeypatch.setenv(WORKERS_ENV, str(bad))
        with pytest.raises(ConfigError):
            resolve_workers()

    def test_effective_workers_caps_at_payload_count(self):
        assert effective_workers(8, payload_count=3) == 3
        assert effective_workers(2, payload_count=0) == 1


class TestRunTasks:
    def test_results_in_payload_order(self):
        payloads = list(range(20))
        assert run_tasks(_square, payloads, workers=2) == [
            p * p for p in payloads
        ]

    def test_serial_fallback_matches(self):
        payloads = list(range(6))
        assert run_tasks(_square, payloads, workers=1) == run_tasks(
            _square, payloads, workers=3
        )

    def test_workers_are_serial_and_env_pinned(self):
        rows = run_tasks(_worker_env, list(range(4)), workers=2)
        pids = {row["pid"] for row in rows}
        # Cells ran in worker processes, not the parent (how many of the
        # pool's workers got a cell depends on scheduling).
        assert os.getpid() not in pids
        for row in rows:
            assert row["workers_env"] == "1"
            assert row["resolved"] == 1  # no nested pools

    def test_parent_runtime_overrides_reach_workers(self):
        with runtime_overrides(dispatch_threshold=0.42):
            values = run_tasks(_runtime_threshold, [0, 1, 2], workers=2)
        assert values == [0.42, 0.42, 0.42]

    def test_cell_exception_propagates(self):
        with pytest.raises(ValueError, match="cell exploded"):
            run_tasks(_boom, [0, 1, 2, 3], workers=2)
        with pytest.raises(ValueError, match="cell exploded"):
            run_tasks(_boom, [0, 1, 2, 3], workers=1)

    def test_initializer_runs_for_serial_fallback(self):
        _INIT_STATE.clear()
        values = run_tasks(
            _read_state, [0, 1], workers=1,
            initializer=_remember, initargs=("seeded",),
        )
        assert values == ["seeded", "seeded"]

    def test_initializer_runs_in_workers(self):
        _INIT_STATE.clear()
        values = run_tasks(
            _read_state, [0, 1, 2], workers=2,
            initializer=_remember, initargs=("pooled",),
        )
        assert values == ["pooled", "pooled", "pooled"]
        assert _INIT_STATE == {}  # parent state untouched

    def test_empty_payloads(self):
        assert run_tasks(_square, [], workers=4) == []


class TestShardSlices:
    def test_even_split(self):
        assert shard_slices(8, shards=4) == [
            slice(0, 2), slice(2, 4), slice(4, 6), slice(6, 8)
        ]

    def test_ragged_split_front_loads_remainder(self):
        assert shard_slices(10, shards=4) == [
            slice(0, 3), slice(3, 6), slice(6, 8), slice(8, 10)
        ]

    def test_more_shards_than_samples(self):
        assert shard_slices(2, shards=8) == [slice(0, 1), slice(1, 2)]

    def test_shard_size_chunking(self):
        assert shard_slices(10, shard_size=4) == [
            slice(0, 4), slice(4, 8), slice(8, 10)
        ]

    def test_default_geometry_is_worker_independent(self):
        assert shard_slices(300) == [slice(0, 128), slice(128, 256), slice(256, 300)]

    def test_slices_cover_range_exactly(self):
        for total in (1, 5, 17, 130):
            for shards in (1, 2, 3, 7):
                slices = shard_slices(total, shards=shards)
                indices = [i for s in slices for i in range(s.start, s.stop)]
                assert indices == list(range(total))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shards=0),
            dict(shard_size=0),
            dict(shards=2, shard_size=2),
        ],
    )
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ParallelError):
            shard_slices(10, **kwargs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ParallelError):
            shard_slices(0)
