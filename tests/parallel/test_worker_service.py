"""The persistent WorkerService: warm reuse, generations, bit-identity."""

import os

import numpy as np
import pytest

from repro.errors import ConfigError, WorkerCrashError, WorkerTimeoutError
from repro.parallel import (
    PERSISTENT_POOL_ENV,
    WORKERS_ENV,
    WorkerService,
    persistent_pool_enabled,
    run_tasks,
    service_stats,
    sharded_forward,
    shared_service,
    shutdown_worker_service,
)
from repro.parallel.service import service_start_method
from repro.quant import FP32, convert
from repro.runtime import runtime_config, runtime_overrides
from repro.snn import build_network


def _square(x):
    return x * x


def _pid(_):
    return os.getpid()


def _slow_pid(_):
    # Slow enough that every pool worker takes at least one task, so the
    # returned pid set is the full pool membership, not a scheduling race.
    import time

    time.sleep(0.05)
    return os.getpid()


def _worker_env(_):
    return os.environ.get(WORKERS_ENV)


def _threshold(_):
    return runtime_config().dispatch_threshold


_INIT_STATE = {}


def _remember(value):
    _INIT_STATE["value"] = value


def _read_state(_):
    return _INIT_STATE.get("value")


@pytest.fixture(scope="module")
def deployable():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", input_shape=(3, 8, 8), num_classes=10, seed=77
    )
    net.eval()
    return convert(net, FP32)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(41)
    return rng.random((11, 3, 8, 8)).astype(np.float32)


class TestSharedServiceReuse:
    def test_pool_started_once_across_calls(self):
        shutdown_worker_service()
        before = service_stats()
        first = run_tasks(_square, list(range(6)), workers=2)
        second = run_tasks(_square, list(range(6)), workers=2)
        after = service_stats()
        assert first == second == [x * x for x in range(6)]
        assert after["pool_starts"] - before["pool_starts"] == 1
        assert after["warm_runs"] - before["warm_runs"] >= 1

    def test_workers_persist_across_calls(self):
        shutdown_worker_service()
        first = set(run_tasks(_slow_pid, list(range(4)), workers=2))
        second = set(run_tasks(_slow_pid, list(range(4)), workers=2))
        assert os.getpid() not in first
        assert len(first) == 2
        assert first == second  # same worker processes served both calls

    def test_growing_worker_count_restarts_pool(self):
        shutdown_worker_service()
        before = service_stats()
        run_tasks(_square, list(range(4)), workers=2)
        run_tasks(_square, list(range(6)), workers=3)
        after = service_stats()
        assert after["pool_starts"] - before["pool_starts"] == 2

    def test_shrinking_worker_count_reuses_pool(self):
        """Alternating wide and narrow fan-outs must not thrash startup."""
        shutdown_worker_service()
        before = service_stats()
        run_tasks(_square, list(range(6)), workers=3)
        narrow = run_tasks(_square, list(range(6)), workers=2)
        wide = run_tasks(_square, list(range(6)), workers=3)
        after = service_stats()
        assert narrow == wide == [x * x for x in range(6)]
        assert after["pool_starts"] - before["pool_starts"] == 1

    def test_narrow_cap_on_wide_pool_limits_concurrency(self):
        """workers= stays a concurrency cap when reusing a wider pool:
        submissions are chunked so at most that many workers serve the
        call."""
        shutdown_worker_service()
        run_tasks(_square, list(range(6)), workers=3)  # pool of 3
        pids = set(run_tasks(_slow_pid, list(range(6)), workers=2))
        assert len(pids) <= 2

    def test_large_generation_state_spilled_to_disk(self):
        """Initializer state past the inline limit ships via a temp file
        (read once per worker), not through the pipe once per task."""
        import numpy as np

        shutdown_worker_service()
        before = service_stats()
        big = np.arange(262144, dtype=np.float64)  # 2 MiB >> inline limit
        values = run_tasks(
            _read_state, list(range(5)), workers=2,
            initializer=_remember, initargs=(big,),
        )
        after = service_stats()
        for value in values:
            assert np.array_equal(value, big)
        assert after["blob_spills"] - before["blob_spills"] == 1
        # Small generations keep riding inline.
        run_tasks(_square, [1, 2], workers=2)
        assert service_stats()["blob_spills"] == after["blob_spills"]

    def test_env_pinned_in_persistent_workers(self):
        assert all(
            value == "1"
            for value in run_tasks(_worker_env, list(range(4)), workers=2)
        )

    def test_runtime_overrides_reach_warm_workers(self):
        run_tasks(_square, [0, 1], workers=2)  # warm the pool first
        with runtime_overrides(dispatch_threshold=0.37):
            values = run_tasks(_threshold, [0, 1, 2], workers=2)
        assert values == [0.37, 0.37, 0.37]
        # And the override is rolled back for the next generation.
        assert set(run_tasks(_threshold, [0, 1, 2], workers=2)) == {
            runtime_config().dispatch_threshold
        }

    def test_initializer_refreshed_per_call(self):
        """Warm workers must never serve a stale initializer's state."""
        first = run_tasks(
            _read_state, [0, 1, 2], workers=2,
            initializer=_remember, initargs=("alpha",),
        )
        second = run_tasks(
            _read_state, [0, 1, 2], workers=2,
            initializer=_remember, initargs=("beta",),
        )
        assert first == ["alpha"] * 3
        assert second == ["beta"] * 3
        assert _INIT_STATE == {}  # parent state untouched

    def test_disabled_service_falls_back_to_pool_per_call(self, monkeypatch):
        monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
        assert not persistent_pool_enabled()
        shutdown_worker_service()
        before = service_stats()
        pooled = run_tasks(_square, list(range(5)), workers=2)
        assert pooled == [x * x for x in range(5)]
        assert service_stats() == before  # service never touched


class TestStandaloneService:
    def test_context_manager_shuts_down(self):
        with WorkerService(workers=2) as service:
            assert service.run(_square, [1, 2, 3]) == [1, 4, 9]
            assert service.running
            assert service.pool_workers == 2
        assert not service.running
        assert service.pool_workers == 0

    def test_restarts_lazily_after_shutdown(self):
        service = WorkerService(workers=2)
        try:
            assert service.run(_square, [2, 3]) == [4, 9]
            service.shutdown()
            assert service.run(_square, [4, 5]) == [16, 25]
            assert service.stats.pool_starts == 2
        finally:
            service.shutdown()

    def test_serial_fallback_runs_inline(self):
        service = WorkerService(workers=1)
        assert service.run(_pid, [0, 1]) == [os.getpid()] * 2
        assert not service.running  # no pool for the serial path

    def test_single_payload_runs_inline(self):
        service = WorkerService(workers=4)
        assert service.run(_pid, [0]) == [os.getpid()]
        assert not service.running

    def test_cell_exception_propagates_and_pool_survives(self):
        with WorkerService(workers=2) as service:
            with pytest.raises(ValueError, match="cell exploded"):
                service.run(_boom, [0, 1, 2])
            # The pool survives a failed map and keeps serving.
            assert service.run(_square, [3, 4]) == [9, 16]
            assert service.stats.pool_starts == 1

    def test_invalid_start_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(ConfigError):
            service_start_method()

    def test_explicit_start_method_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "fork")
        assert service_start_method() == "fork"


def _boom(x):
    raise ValueError("cell exploded")


def _kill_or_linger(payload):
    """The fault-injection cell: ``"die"`` SIGKILLs its own worker (the
    abrupt death -- OOM killer, segfault -- that vanilla ``Pool.map``
    waits on forever); everything else lingers long enough that the
    mapped call cannot complete before the crash is observable."""
    import signal
    import time

    if payload == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(0.3)
    return payload


def _sleep_cell(seconds):
    import time

    time.sleep(seconds)
    return seconds


class TestFaultContainment:
    """A dead or wedged worker must surface as a typed error -- never a
    silent hang -- and the next call must run on a fresh pool."""

    def test_worker_death_raises_typed_error_persistent(self):
        shutdown_worker_service()
        before = service_stats()
        with pytest.raises(WorkerCrashError):
            run_tasks(_kill_or_linger, ["die", "a", "b", "c"], workers=2)
        # The crashed pool was aborted; the service restarts lazily and
        # keeps serving.
        assert run_tasks(_square, [1, 2, 3, 4], workers=2) == [1, 4, 9, 16]
        after = service_stats()
        assert after["aborts"] - before["aborts"] == 1
        assert after["pool_starts"] - before["pool_starts"] == 2

    def test_worker_death_raises_typed_error_pool_per_call(self, monkeypatch):
        monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
        shutdown_worker_service()
        with pytest.raises(WorkerCrashError):
            run_tasks(_kill_or_linger, ["die", "a", "b", "c"], workers=2)
        assert run_tasks(_square, [3, 4], workers=2) == [9, 16]

    def test_timeout_raises_typed_error_and_pool_recovers(self):
        shutdown_worker_service()
        with pytest.raises(WorkerTimeoutError):
            run_tasks(_sleep_cell, [30.0, 30.0], workers=2, timeout=0.2)
        assert run_tasks(_square, [1, 2, 3], workers=2) == [1, 4, 9]
        assert service_stats()["aborts"] >= 1

    def test_timeout_pool_per_call(self, monkeypatch):
        monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
        shutdown_worker_service()
        with pytest.raises(WorkerTimeoutError):
            run_tasks(_sleep_cell, [30.0, 30.0], workers=2, timeout=0.2)
        assert run_tasks(_square, [5, 6], workers=2) == [25, 36]

    def test_generous_timeout_does_not_fire(self):
        shutdown_worker_service()
        assert run_tasks(
            _square, [1, 2, 3, 4], workers=2, timeout=60.0
        ) == [1, 4, 9, 16]

    def test_serial_fallback_ignores_timeout(self):
        # Inline execution has no separate process to abandon; the
        # budget is documented as pooled-only.
        assert run_tasks(_sleep_cell, [0.01], workers=1, timeout=0.001) == [
            0.01
        ]

    def test_cell_exception_still_propagates_through_guard(self):
        shutdown_worker_service()
        with pytest.raises(ValueError, match="cell exploded"):
            run_tasks(_boom, [0, 1, 2], workers=2, timeout=30.0)
        assert run_tasks(_square, [2, 3], workers=2) == [4, 9]

    def test_standalone_service_aborts_and_restarts_after_crash(self):
        with WorkerService(workers=2) as service:
            with pytest.raises(WorkerCrashError):
                service.run(_kill_or_linger, ["die", "a", "b", "c"])
            assert not service.running  # crashed pool torn down
            assert service.run(_square, [7, 8]) == [49, 64]
            assert service.stats.aborts == 1
            assert service.stats.pool_starts == 2


class TestCircuitBreaker:
    """The abort-rate breaker: open, degrade inline, probe, close."""

    def test_full_cycle_closed_open_halfopen_closed(self):
        from repro.parallel import CircuitBreaker

        breaker = CircuitBreaker(threshold=2, window_s=30.0, cooldown_s=0.05)
        assert breaker.state == "closed"
        assert not breaker.record_abort()
        assert breaker.state == "closed"
        assert breaker.record_abort()  # second abort in window: trip
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow_pool()
        import time

        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.allow_pool()  # the probe
        breaker.record_success()
        assert breaker.state == "closed"
        # History cleared: one fresh abort no longer trips.
        assert not breaker.record_abort()

    def test_failed_probe_reopens(self):
        from repro.parallel import CircuitBreaker

        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        assert breaker.record_abort()
        import time

        time.sleep(0.06)
        assert breaker.allow_pool()  # half-open probe
        assert breaker.record_abort()  # probe failed
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow_pool()

    def test_window_prunes_old_aborts(self):
        from repro.parallel import CircuitBreaker

        breaker = CircuitBreaker(threshold=2, window_s=0.05)
        assert not breaker.record_abort()
        import time

        time.sleep(0.08)  # first abort ages out of the window
        assert not breaker.record_abort()
        assert breaker.state == "closed"

    def test_threshold_validated(self):
        from repro.parallel import CircuitBreaker

        with pytest.raises(ConfigError):
            CircuitBreaker(threshold=0)

    def test_env_configures_the_shared_breaker(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "7")
        monkeypatch.setenv("REPRO_BREAKER_WINDOW_MS", "5000")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN_MS", "250")
        service = WorkerService(workers=2)
        assert service.breaker.threshold == 7
        assert service.breaker.window_s == 5.0
        assert service.breaker.cooldown_s == 0.25

    def test_open_breaker_degrades_run_to_inline(self):
        """With the breaker open, runs complete serially in the parent
        (correct results, breaker_serial_runs counted) and the pool is
        left alone until the cooldown's half-open probe."""
        from repro.parallel import CircuitBreaker

        with WorkerService(
            workers=2, breaker=CircuitBreaker(threshold=1, cooldown_s=60.0)
        ) as service:
            service.breaker.record_abort()
            assert service.breaker.state == "open"
            assert service.run(_square, [1, 2, 3]) == [1, 4, 9]
            assert not service.running  # no pool was started
            assert service.stats.breaker_serial_runs == 1
            assert service.stats.pool_starts == 0

    def test_crash_storm_trips_then_probe_recovers(self):
        """End to end: repeated worker deaths open the breaker (inline
        execution keeps completing), then the post-cooldown probe closes
        it and pooled execution resumes."""
        from repro.parallel import CircuitBreaker

        with WorkerService(
            workers=2,
            restart_backoff_ms=1.0,
            breaker=CircuitBreaker(threshold=2, cooldown_s=0.1),
        ) as service:
            for _ in range(2):
                with pytest.raises(WorkerCrashError):
                    service.run(_kill_or_linger, ["die", "a", "b", "c"])
            assert service.breaker.state == "open"
            assert service.stats.breaker_trips == 1
            # Degraded but alive (two payloads: a single payload takes
            # the ordinary serial fallback before the breaker check).
            assert service.run(_square, [5, 8]) == [25, 64]
            assert service.stats.breaker_serial_runs == 1
            import time

            time.sleep(0.12)
            # Half-open: this run probes the pool, succeeds, closes.
            assert service.run(_square, [6, 7]) == [36, 49]
            assert service.breaker.state == "closed"
            assert service.running


class TestRestartBackoff:
    """Post-abort pool restarts are damped, and counted apart from starts."""

    def test_restarts_counted_separately_from_pool_starts(self):
        with WorkerService(workers=2, restart_backoff_ms=1.0) as service:
            assert service.run(_square, [1, 2]) == [1, 4]
            assert service.stats.pool_starts == 1
            assert service.stats.restarts == 0  # first start: not a restart
            with pytest.raises(WorkerCrashError):
                service.run(_kill_or_linger, ["die", "a", "b", "c"])
            assert service.run(_square, [3, 5]) == [9, 25]
            assert service.stats.aborts == 1
            assert service.stats.pool_starts == 2
            assert service.stats.restarts == 1  # post-abort start

    def test_backoff_grows_with_consecutive_aborts(self):
        import time

        with WorkerService(
            workers=2,
            restart_backoff_ms=120.0,
            restart_backoff_max_ms=400.0,
        ) as service:
            with pytest.raises(WorkerCrashError):
                service.run(_kill_or_linger, ["die", "a", "b", "c"])
            with pytest.raises(WorkerCrashError):
                service.run(_kill_or_linger, ["die", "a", "b", "c"])
            assert service._consecutive_aborts == 2
            # Third start pays ~2x the base backoff (damping doubled).
            started = time.monotonic()
            assert service.run(_square, [4, 5]) == [16, 25]
            assert time.monotonic() - started >= 0.2
            # Success resets the damping: the next abort starts over.
            assert service._consecutive_aborts == 0
            assert service.stats.restarts == 2

    def test_success_resets_backoff_damping(self):
        with WorkerService(workers=2, restart_backoff_ms=1.0) as service:
            with pytest.raises(WorkerCrashError):
                service.run(_kill_or_linger, ["die", "a", "b", "c"])
            assert service._consecutive_aborts == 1
            assert service.run(_square, [2, 3]) == [4, 9]
            assert service._consecutive_aborts == 0
            assert service._last_abort is None


class TestWarmColdBitIdentity:
    """The ISSUE's acceptance gate: warm pools never change a bit."""

    def test_sharded_forward_warm_equals_cold_equals_serial(
        self, deployable, images
    ):
        serial = sharded_forward(
            deployable, images, 2, shards=4, workers=1, record=True
        )
        shutdown_worker_service()
        cold = sharded_forward(
            deployable, images, 2, shards=4, workers=2, record=True
        )
        warm = sharded_forward(
            deployable, images, 2, shards=4, workers=2, record=True
        )
        for pooled in (cold, warm):
            assert np.array_equal(pooled.logits, serial.logits)
            assert pooled.stats.per_layer == serial.stats.per_layer
            assert (
                pooled.stats.per_layer_timestep
                == serial.stats.per_layer_timestep
            )
            assert pooled.input_spike_totals == serial.input_spike_totals
            for name, series in serial.spike_trains.items():
                for t, train in enumerate(series):
                    assert np.array_equal(pooled.spike_trains[name][t], train)

    def test_replaced_artifact_at_same_path_is_not_served_stale(
        self, images, tmp_path
    ):
        """Generation reuse is keyed on contents, not the path string:
        overwriting the artifact behind an unchanged model_path must
        re-initialize warm workers, never serve the old weights."""
        def fresh_model(seed):
            net = build_network(
                "8C3-MP2-16C3-MP2-40",
                input_shape=(3, 8, 8),
                num_classes=10,
                seed=seed,
            )
            net.eval()
            return convert(net, FP32)

        model_path = str(tmp_path / "model.npz")
        old, new = fresh_model(seed=5), fresh_model(seed=6)
        old.save(model_path)
        stale = sharded_forward(
            old, images, 2, shards=2, workers=2, model_path=model_path
        )
        new.save(model_path)  # retrain lands at the same path
        got = sharded_forward(
            new, images, 2, shards=2, workers=2, model_path=model_path
        )
        want = sharded_forward(new, images, 2, shards=2, workers=1)
        assert np.array_equal(got.logits, want.logits)
        assert not np.array_equal(got.logits, stale.logits)

    def test_shared_service_survives_mixed_workloads(self, deployable, images):
        """Interleaving unrelated run_tasks calls between sharded runs
        must not leak one call's generation state into the next."""
        serial = sharded_forward(deployable, images, 2, shards=2, workers=1)
        sharded_forward(deployable, images, 2, shards=2, workers=2)
        run_tasks(_square, list(range(8)), workers=2)
        again = sharded_forward(deployable, images, 2, shards=2, workers=2)
        assert np.array_equal(again.logits, serial.logits)
        assert again.stats.per_layer == serial.stats.per_layer
