#!/usr/bin/env bash
# Perf smoke gate for the inference runtime.
#
# Runs the runtime hot-path bench at tiny scale and fails (exit 1) if
# the event-driven path is slower than the legacy per-timestep loop at
# any density <= 5%, or if the runtime forward is slower than the legacy
# forward end-to-end. Wire this into CI so future PRs cannot silently
# regress the event-driven win. Results land in BENCH_runtime.json at
# the repo root.
#
# Usage: scripts/perf_smoke.sh            (tiny scale, the default)
#        REPRO_BENCH_SCALE=small scripts/perf_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-tiny}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

exec python benchmarks/bench_runtime_hotpaths.py --smoke
