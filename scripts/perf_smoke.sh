#!/usr/bin/env bash
# Perf smoke gate for the inference runtime.
#
# Runs the runtime hot-path bench at tiny scale and fails (exit 1) if
# the event-driven path is slower than the legacy per-timestep loop at
# any density <= 5%, if the runtime forward is slower than the legacy
# forward end-to-end, or if the blocked event kernel is slower than the
# dense kernel at the two sparsest blocked_scatter densities on the
# deep-VGG9 (K >= 500) shape, or if the int8 event kernel is slower
# than the float event kernel at the two sparsest quantized_kernels
# densities (the integer datapath must never cost speed where the
# event path lives). Wire this into CI so future PRs cannot
# silently regress the event-driven win. Results land in
# BENCH_runtime.<scale>.json at the repo root (plain BENCH_runtime.json
# is reserved for the canonical small-scale record tracked across PRs).
#
# Also runs the blocked routing gate (every deep-VGG9 conv shape must
# calibrate a k-block and route its density <= 5% timesteps to the
# event path bit-exactly), the docs drift gate (every REPRO_* variable
# and CLI flag must be registered in repro/analysis/registry.py and
# documented in docs/CONFIGURATION.md), the static analysis gate
# (scripts/check_static.py: repro lint must report zero fresh findings
# -- determinism, cross-process safety, typed-error discipline and
# registry drift, see docs/LINTING.md -- plus ruff when installed) and
# the
# parallel determinism gate: the direct-coded sharded evaluation path
# with 2 workers, twice, byte-compared against each other and against
# the serial fallback, plus the rate-coded counter-stream gate --
# logits, spike statistics and input totals byte-identical against the
# unsharded forward for shards in {1,2,4}, and the full pooled report
# (counters included) byte-identical to serial at shards {2,4} x 2
# workers (exit 1 on any difference). Rate coding was exempt while
# encoder snapshots made it geometry-dependent.
#
# The fault recovery gate exercises the self-healing executor under a
# pinned deterministic fault plan (one worker crash + one wedged shard
# on a 4-shard rate-coded run): the healed run must byte-match the
# fault-free run, and a 3-strike poison shard must surface as a typed
# PoisonTaskError carrying the surviving shards (exit 1 otherwise).
# The bench's fault_recovery section records the recovery overhead.
#
# The serving determinism gate closes the loop online: every sample
# served through the dynamic batcher (burst, scattered and 2-worker
# pooled arrival patterns, direct and rate coding) must byte-match the
# offline forward of the same samples; the bench's serving section
# additionally gates nominal-load p99 latency against its
# self-calibrated bound and full admission accounting at overload.
#
# Usage: scripts/perf_smoke.sh            (tiny scale, the default)
#        REPRO_BENCH_SCALE=small scripts/perf_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-tiny}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python benchmarks/bench_runtime_hotpaths.py --smoke
python scripts/check_blocked_routing.py
python scripts/check_docs.py
python scripts/check_static.py
python scripts/check_serving_determinism.py
python scripts/check_parallel_determinism.py
exec python scripts/check_fault_recovery.py
