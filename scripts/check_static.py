"""Static-analysis gate: ``repro lint`` plus (when installed) ``ruff``.

Exit code 0 only when:

1. ``repro lint src`` reports zero fresh findings against the checked-in
   ``lint-baseline.json`` (determinism, cross-process safety,
   typed-error discipline, registry drift -- see ``docs/LINTING.md``);
2. ``ruff check`` passes with the ``[tool.ruff]`` configuration in
   ``pyproject.toml`` -- skipped with a notice when ruff is not
   installed (the container image does not ship it; the repo's own
   linter above is the authoritative gate).

Wired into ``scripts/perf_smoke.sh``. Run standalone with:

    python scripts/check_static.py [--root DIR]

``--root`` points the gate at another checkout (the test suite uses it
to prove the gate fails on a seeded violation).
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=REPO_ROOT,
        help="tree to check (default: this repository)",
    )
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    # The linter itself always comes from *this* repository, whatever
    # tree it is pointed at.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    lint = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=root,
        env=env,
    )
    if lint.returncode != 0:
        print("check_static: repro lint failed", file=sys.stderr)
        return lint.returncode

    ruff = shutil.which("ruff")
    if ruff is None:
        print(
            "check_static: ruff not installed; skipping the ruff pass "
            "(repro lint above is the authoritative gate)"
        )
        return 0
    result = subprocess.run(
        [ruff, "check", "src", "scripts", "benchmarks", "tests"], cwd=root
    )
    if result.returncode != 0:
        print("check_static: ruff check failed", file=sys.stderr)
        return result.returncode
    print("check_static: repro lint and ruff both clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
