"""Docs drift gate: configuration surface vs docs/CONFIGURATION.md.

The configuration surface is declared once, in
:mod:`repro.analysis.registry`. This gate holds three parties to that
declaration and fails with exit code 1 on any disagreement:

1. **source tree vs registry** -- every ``REPRO_*`` token in ``src/``,
   ``scripts/`` and ``benchmarks/`` must be registered, and every
   registered variable must still be mentioned somewhere (no stale
   entries);
2. **argument parser vs registry** -- every long option of the
   ``snn-hybrid`` CLI (all subcommands) must be registered, and every
   registered flag must exist on the parser;
3. **registry vs docs** -- every registered token must appear in
   ``docs/CONFIGURATION.md``.

So a new knob cannot land without being registered *and* documented.
``repro lint`` enforces (1) and (2) statically per-file (rules
R101/R102/R103); this gate re-checks them end-to-end at CI time. Wired
into ``scripts/perf_smoke.sh``; run standalone with:

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterator, List, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

CONFIG_DOC = os.path.join(REPO_ROOT, "docs", "CONFIGURATION.md")


def _walk_options(parser: argparse.ArgumentParser) -> Iterator[str]:
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                yield option
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                yield from _walk_options(sub)


def cli_flags() -> Set[str]:
    """Every long option of the CLI, across all subcommands."""
    from repro.cli import build_parser

    return set(_walk_options(build_parser()))


def _is_documented(token: str, documented: str) -> bool:
    """Word-boundary membership, not substring membership: a token must
    not count as documented just because a longer token extending it
    (same name plus an extra ``_SUFFIX`` or ``-suffix``) appears in the
    text. A family prefix (trailing ``_``) is documented by its
    starred prose form."""
    if token.endswith("_"):
        token = token + "*"
    return (
        re.search(
            rf"(?<![A-Za-z0-9_-]){re.escape(token)}(?![A-Za-z0-9_-])",
            documented,
        )
        is not None
    )


def main() -> int:
    from repro.analysis import registry

    problems: List[str] = []

    # 1. source tree vs registry, both directions
    unregistered, stale = registry.verify_against_tree(REPO_ROOT)
    for token in sorted(unregistered):
        problems.append(
            f"REGISTRY DRIFT: REPRO_* token {token} appears in the source "
            f"tree but is not declared in repro/analysis/registry.py"
        )
    for token in sorted(stale):
        problems.append(
            f"REGISTRY DRIFT: registered variable {token} no longer "
            f"appears anywhere in the source tree (stale entry)"
        )

    # 2. argument parser vs registry, both directions
    parser_flags = cli_flags()
    registered_flags = registry.registered_flag_names()
    for flag in sorted(parser_flags - registered_flags):
        problems.append(
            f"REGISTRY DRIFT: CLI flag {flag} exists on the parser but is "
            f"not declared in repro/analysis/registry.py"
        )
    for flag in sorted(registered_flags - parser_flags):
        problems.append(
            f"REGISTRY DRIFT: registered CLI flag {flag} does not exist "
            f"on the parser (stale entry)"
        )

    # 3. registry vs docs
    with open(CONFIG_DOC, "r", encoding="utf-8") as handle:
        documented = handle.read()
    for token in sorted(registry.documented_tokens()):
        if not _is_documented(token, documented):
            kind = (
                "environment variable" if token.startswith("REPRO_")
                else "CLI flag"
            )
            problems.append(
                f"DOCS DRIFT: {kind} {token} is registered but missing "
                f"from docs/CONFIGURATION.md"
            )

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    env_count = len(registry.registered_env_names()) + len(
        registry.FAMILY_PREFIXES
    )
    print(
        f"docs configuration reference is complete "
        f"({env_count} REPRO_* variables, {len(parser_flags)} CLI flags)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
