"""Docs drift gate: configuration surface vs docs/CONFIGURATION.md.

Greps ``src/``, ``scripts/`` and ``benchmarks/`` for ``REPRO_*``
environment variables and walks the ``snn-hybrid`` argument parser
(including every subcommand) for long option strings, then fails with
exit code 1 if any of them is missing from ``docs/CONFIGURATION.md`` --
so a new knob cannot land without its documentation. Wired into
``scripts/perf_smoke.sh``; run standalone with:

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterator, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

CONFIG_DOC = os.path.join(REPO_ROOT, "docs", "CONFIGURATION.md")

#: Where configuration surface can be introduced. Tests are deliberately
#: excluded: they may reference hypothetical or negative-case values.
SCAN_DIRS = ("src", "scripts", "benchmarks")

ENV_PATTERN = re.compile(r"REPRO_[A-Z0-9_]+")


def repo_env_vars() -> Set[str]:
    """Every REPRO_* token mentioned anywhere in the scanned trees."""
    found: Set[str] = set()
    for scan_dir in SCAN_DIRS:
        root = os.path.join(REPO_ROOT, scan_dir)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in filenames:
                if not name.endswith((".py", ".sh")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as handle:
                    found.update(ENV_PATTERN.findall(handle.read()))
    return found


def _walk_options(parser: argparse.ArgumentParser) -> Iterator[str]:
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                yield option
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                yield from _walk_options(sub)


def cli_flags() -> Set[str]:
    """Every long option of the CLI, across all subcommands."""
    from repro.cli import build_parser

    return set(_walk_options(build_parser()))


def _is_documented(token: str, documented: str) -> bool:
    """Word-boundary membership, not substring membership: a token must
    not count as documented just because a longer token extending it
    (same name plus an extra ``_SUFFIX`` or ``-suffix``) appears in the
    text."""
    return (
        re.search(
            rf"(?<![A-Za-z0-9_-]){re.escape(token)}(?![A-Za-z0-9_-])",
            documented,
        )
        is not None
    )


def main() -> int:
    with open(CONFIG_DOC, "r", encoding="utf-8") as handle:
        documented = handle.read()
    env_vars = repo_env_vars()
    flags = cli_flags()
    missing = [
        token
        for token in sorted(env_vars | flags)
        if not _is_documented(token, documented)
    ]
    for token in missing:
        kind = "environment variable" if token.startswith("REPRO_") else "CLI flag"
        print(
            f"DOCS DRIFT: {kind} {token} exists in the source tree but is "
            f"missing from docs/CONFIGURATION.md",
            file=sys.stderr,
        )
    if missing:
        return 1
    print(
        f"docs configuration reference is complete "
        f"({len(env_vars)} REPRO_* variables, {len(flags)} CLI flags)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
