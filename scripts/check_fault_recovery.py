"""Fault-recovery gate for the self-healing parallel executor.

Three phases over the same rate-coded 4-shard workload used by the
parallel determinism gate:

* **clean**: a fault-free 2-worker sharded evaluation, rendered into
  the canonical byte report (logits digest, per-layer spike statistics,
  input totals, dispatch counters).
* **faulted**: the identical call under a pinned fault plan -- one
  worker crash (SIGKILL mid-shard) and one wedge (a shard that hangs
  until the per-task timeout kills it). The retry engine must heal both
  and the merged report must be **byte-identical** to the clean run:
  counter-based encoding streams make every retried shard a pure
  function of (seed, global sample index, timestep), so recovery is not
  allowed to perturb a single bit.
* **poison**: a shard that dies on every attempt must be quarantined
  after ``max_attempts`` strikes and surface as a typed
  :class:`PoisonTaskError` carrying the surviving shards' results.

The circuit breaker is pinned high for the gate (the plan *induces*
aborts; a breaker that opened would degrade to inline execution where
injection is off by design, and the gate would vacuously pass).

Wired into ``scripts/perf_smoke.sh``; run standalone with:

    PYTHONPATH=src python scripts/check_fault_recovery.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

# Pin recovery knobs before any pool exists: the breaker is configured
# at WorkerService construction, and backoff sleeps only slow the gate.
os.environ["REPRO_BREAKER_THRESHOLD"] = "100"
os.environ["REPRO_RETRY_BACKOFF_MS"] = "0"
os.environ["REPRO_RETRY_BACKOFF_MAX_MS"] = "0"

import numpy as np

from repro.errors import PoisonTaskError
from repro.faults import FAULT_PLAN_ENV
from repro.parallel import (
    RetryPolicy,
    retry_stats,
    sharded_forward,
    shutdown_worker_service,
)
from repro.parallel.retry import reset_retry_stats
from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.snn import build_vgg9
from repro.snn.encoding import RateEncoder
from repro.snn.neuron import LIFConfig

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_parallel_determinism import canonical_report  # noqa: E402

SHARDS = 4
TIMESTEPS = 4
RATE_SEED = 11

#: Shard 0 loses its worker on the first attempt; shard 2 wedges for
#: 30 s (far beyond the per-task timeout) on its first attempt. Both
#: recover on retry.
RECOVERY_PLAN = "seed=0,crash@0:0,wedge@2:0~30"

#: Shard 0 dies on every one of its three allowed attempts.
POISON_PLAN = "seed=0,crash@0:0,crash@0:1,crash@0:2"


def build_workload():
    network = build_vgg9(
        num_classes=10,
        population=200,
        input_shape=(3, 16, 16),
        channel_scale=0.125,
        lif=LIFConfig(threshold=1.0),
        seed=42,
    )
    network.eval()
    deployable = convert(network, FP32)
    rng = np.random.default_rng(7)
    images = rng.random((12, 3, 16, 16)).astype(np.float32)
    return deployable, images


def run_report(deployable, images, policy) -> bytes:
    out = sharded_forward(
        deployable,
        images,
        TIMESTEPS,
        RateEncoder(seed=RATE_SEED),
        shards=SHARDS,
        workers=2,
        retry=policy,
    )
    return canonical_report(out, counters=True)


def main() -> int:
    deployable, images = build_workload()
    policy = RetryPolicy(
        max_attempts=3, backoff_ms=0.0, backoff_max_ms=0.0,
        task_timeout_s=3.0,
    )
    failures = []
    with runtime_overrides(dispatch_policy="density"):
        clean = run_report(deployable, images, policy)

        shutdown_worker_service()  # the plan is read at worker spawn
        reset_retry_stats()
        os.environ[FAULT_PLAN_ENV] = RECOVERY_PLAN
        try:
            faulted = run_report(deployable, images, policy)
        finally:
            del os.environ[FAULT_PLAN_ENV]
            shutdown_worker_service()

        stats = retry_stats()
        if faulted != clean:
            failures.append(
                "faulted run is not byte-identical to the clean run "
                f"(plan {RECOVERY_PLAN!r})"
            )
        if stats.retries < 2:
            failures.append(
                f"expected >=2 retries (1 crash + 1 wedge), saw "
                f"{stats.retries}: the plan did not exercise recovery"
            )
        if stats.recovered_calls < 1:
            failures.append("no call was recorded as recovered")
        if stats.quarantined != 0:
            failures.append(
                f"recoverable plan quarantined {stats.quarantined} task(s)"
            )

        os.environ[FAULT_PLAN_ENV] = POISON_PLAN
        try:
            run_report(deployable, images, policy)
            failures.append(
                "poison shard was not quarantined: the call succeeded "
                f"under plan {POISON_PLAN!r}"
            )
        except PoisonTaskError as err:
            survivors = sum(1 for r in err.results if r is not None)
            if err.quarantined != [0]:
                failures.append(
                    f"expected quarantined shards [0], got {err.quarantined}"
                )
            if survivors != SHARDS - 1:
                failures.append(
                    f"expected {SHARDS - 1} surviving shard results, "
                    f"got {survivors}"
                )
        finally:
            del os.environ[FAULT_PLAN_ENV]
            shutdown_worker_service()

    for failure in failures:
        print(f"FAULT RECOVERY FAILURE: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        "fault recovery gate passed "
        f"({SHARDS} shards, 2 workers: 1 crash + 1 wedge healed with "
        f"{stats.retries} retries, {len(clean)}-byte reports identical; "
        "3-strike poison shard quarantined with "
        f"{SHARDS - 1} surviving shards attached)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
