"""Determinism gate for the online serving path.

The serving layer's core contract: logits served through the dynamic
batcher are byte-identical to the offline forward of the same samples,
for any arrival pattern. This gate builds the same tiny VGG9 workload
the parallel gate uses, serves every sample through three adversarial
arrival patterns -- a contiguous burst, a scattered shuffled replay
through small batches, and a pooled (2-worker) server -- and
byte-compares each response against the unsharded offline forward, for
direct and counter-stream rate coding.

Any difference means dynamic batch composition leaked into the numbers
-- exactly the regression class the serving layer's
``GatherStreamEncoder`` + batch-split invariance are built to exclude.

Wired into ``scripts/perf_smoke.sh``; run standalone with:

    PYTHONPATH=src python scripts/check_serving_determinism.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np

from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.serving import InferenceServer, resolve_serve_config
from repro.snn import build_vgg9
from repro.snn.encoding import DirectEncoder, RateEncoder
from repro.snn.neuron import LIFConfig

TIMESTEPS = 4
RATE_SEED = 11

#: (label, max_batch, submission order) -- the arrival patterns served.
#: Orders are fixed so failures reproduce; the scattered order forces
#: non-contiguous stream gathers through every batch.
PATTERNS = (
    ("burst", 4, list(range(12))),
    ("scattered", 3, [7, 2, 11, 0, 5, 9, 1, 10, 4, 8, 3, 6]),
)


def build_workload():
    network = build_vgg9(
        num_classes=10,
        population=200,
        input_shape=(3, 16, 16),
        channel_scale=0.125,
        lif=LIFConfig(threshold=1.0),
        seed=42,
    )
    network.eval()
    deployable = convert(network, FP32)
    rng = np.random.default_rng(7)
    images = rng.random((12, 3, 16, 16)).astype(np.float32)
    return deployable, images


def make_encoder(coding):
    if coding == "direct":
        return DirectEncoder()
    return RateEncoder(seed=RATE_SEED)


def serve_pattern(deployable, images, coding, max_batch, order, workers=None):
    server = InferenceServer(
        resolve_serve_config(
            max_batch=max_batch,
            max_wait_ms=20.0,
            queue_depth=len(images) + 4,
            timeout_ms=0.0,
        )
    )
    try:
        server.register(
            "gate",
            deployable,
            TIMESTEPS,
            encoder=make_encoder(coding),
            workers=workers,
            shard_size=2 if workers else None,
        )
        pendings = [
            (index, server.submit("gate", images[index], stream_index=index))
            for index in order
        ]
        return {index: pending.result() for index, pending in pendings}
    finally:
        server.shutdown()


def check_coding(deployable, images, coding, failures) -> int:
    offline = deployable.forward(
        images, TIMESTEPS, make_encoder(coding), record=False
    ).logits
    compared = 0
    for label, max_batch, order in PATTERNS:
        responses = serve_pattern(deployable, images, coding, max_batch, order)
        for index, response in responses.items():
            compared += 1
            if (
                response.logits.tobytes()
                != np.ascontiguousarray(offline[index]).tobytes()
            ):
                failures.append(
                    f"{coding}/{label}: sample {index} served through "
                    f"max_batch={max_batch} differs from the offline forward"
                )
    # Pooled server: the batch executes on a 2-worker pool; bytes must
    # still match the inline offline forward.
    responses = serve_pattern(
        deployable, images, coding, 4, list(range(12)), workers=2
    )
    for index, response in responses.items():
        compared += 1
        if (
            response.logits.tobytes()
            != np.ascontiguousarray(offline[index]).tobytes()
        ):
            failures.append(
                f"{coding}/pooled: sample {index} served through a "
                "2-worker pool differs from the offline forward"
            )
    return compared


def main() -> int:
    deployable, images = build_workload()
    failures = []
    compared = 0
    with runtime_overrides(dispatch_policy="density"):
        for coding in ("direct", "rate"):
            compared += check_coding(deployable, images, coding, failures)
    for failure in failures:
        print(f"SERVING NON-DETERMINISM: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        "serving determinism gate passed "
        f"({compared} served responses byte-compared against the offline "
        "forward: burst + scattered + pooled patterns, direct and rate "
        "coding)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
