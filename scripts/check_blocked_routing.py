"""Routing gate for the blocked event path on deep-VGG9 conv shapes.

For every deep-VGG9 conv shape (K >= 500 -- the shapes that failed the
unblocked BLAS-fold probe and were locked onto the dense path before the
blocked k-fold landed) this gate asserts, at paper-regime densities
(<= 5%):

1. the shape resolves to a positive calibrated k-block,
2. the dispatcher actually routes its sparse timesteps to the event
   path (density policy: pure eligibility, deterministic), and
3. the event-routed result is bit-identical to the forced-dense run of
   the same engine -- the canonical blocked fold shared by both kernels.

Exit code 1 on any violation. Wired into ``scripts/perf_smoke.sh``; run
standalone with:

    PYTHONPATH=src python scripts/check_blocked_routing.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np

from repro.runtime import (
    InferenceEngine,
    resolve_event_backend,
    resolve_event_block,
    runtime_overrides,
)
from repro.runtime.refshapes import DEEP_VGG9_SHAPES, make_conv_network_plan

DENSITIES = (0.01, 0.04)
TIMESTEPS = 2
BATCH = 2


def main() -> int:
    failures = []
    backend = resolve_event_backend("auto")
    for index, (cin, height, width, cout) in enumerate(DEEP_VGG9_SHAPES):
        plan = make_conv_network_plan(
            cin, height, width, cout, seed=100 + index
        )
        conv = plan.layers[0]
        k = conv.geometry.k
        block = resolve_event_block(conv, backend)
        if not block:
            failures.append(
                f"K={k}: no calibrated k-block (resolution {block!r})"
            )
            continue
        for density in DENSITIES:
            rng = np.random.default_rng(1000 + index)
            spikes = (
                rng.random((TIMESTEPS, BATCH, cin, height, width)) < density
            ).astype(np.float32)
            with runtime_overrides(force_path="dense"):
                dense = InferenceEngine(plan).run(spikes)
            with runtime_overrides(dispatch_policy="density"):
                routed = InferenceEngine(plan).run(spikes)
            counters = routed.counters[conv.name]
            if counters.dense_steps != 0:
                failures.append(
                    f"K={k} @ {density:.0%}: {counters.dense_steps} of "
                    f"{TIMESTEPS} timesteps stayed dense "
                    f"({counters.as_dict()})"
                )
            if not np.array_equal(routed.accumulated, dense.accumulated):
                failures.append(
                    f"K={k} @ {density:.0%}: event-routed result diverged "
                    "from the forced-dense run"
                )
        print(f"K={k}: k_block={block}, event-routed bit-exactly at "
              + ", ".join(f"{d:.0%}" for d in DENSITIES))
    for failure in failures:
        print(f"BLOCKED ROUTING REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"blocked routing gate passed ({len(DEEP_VGG9_SHAPES)} deep shapes, "
        f"densities {DENSITIES})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
