"""Determinism gate for the parallel execution path.

Runs the same sharded evaluation three times -- twice through a 2-worker
process pool and once through the serial fallback -- renders each merged
result into a canonical JSON report (logits digest, per-layer spike
statistics, input totals, dispatch counters), and byte-compares the
three. Any difference between the two pooled runs, or between pooled and
serial, is a determinism regression and fails with exit code 1.

Wired into ``scripts/perf_smoke.sh``; run standalone with:

    PYTHONPATH=src python scripts/check_parallel_determinism.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np

from repro.parallel import sharded_forward
from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.snn import build_vgg9
from repro.snn.neuron import LIFConfig

SHARDS = 4
TIMESTEPS = 2


def build_workload():
    network = build_vgg9(
        num_classes=10,
        population=200,
        input_shape=(3, 16, 16),
        channel_scale=0.125,
        lif=LIFConfig(threshold=1.0),
        seed=42,
    )
    network.eval()
    deployable = convert(network, FP32)
    rng = np.random.default_rng(7)
    images = rng.random((12, 3, 16, 16)).astype(np.float32)
    return deployable, images


def canonical_report(output) -> bytes:
    """A byte-stable rendering of everything a merged run produces."""
    record = {
        "logits_sha256": hashlib.sha256(
            np.ascontiguousarray(output.logits).tobytes()
        ).hexdigest(),
        "samples": output.stats.samples,
        "timesteps": output.stats.timesteps,
        "per_layer": output.stats.per_layer,
        "per_layer_timestep": output.stats.per_layer_timestep,
        "input_totals": output.input_spike_totals,
        "counters": {
            name: counter.as_dict()
            for name, counter in (output.runtime_counters or {}).items()
        },
    }
    return json.dumps(record, sort_keys=True).encode("utf-8")


def main() -> int:
    deployable, images = build_workload()
    # Pin the default runtime config, with one exception: the canonical
    # report byte-compares dispatch counters, and cost-model routing is
    # wall-clock dependent by design (results are dispatch-invariant,
    # counters are not) -- so the gate runs the deterministic density
    # policy.
    with runtime_overrides(dispatch_policy="density"):
        pooled_a = canonical_report(
            sharded_forward(
                deployable, images, TIMESTEPS, shards=SHARDS, workers=2
            )
        )
        pooled_b = canonical_report(
            sharded_forward(
                deployable, images, TIMESTEPS, shards=SHARDS, workers=2
            )
        )
        serial = canonical_report(
            sharded_forward(
                deployable, images, TIMESTEPS, shards=SHARDS, workers=1
            )
        )
    failures = []
    if pooled_a != pooled_b:
        failures.append("two 2-worker runs produced different reports")
    if pooled_a != serial:
        failures.append("2-worker run differs from the serial fallback")
    for failure in failures:
        print(f"PARALLEL NON-DETERMINISM: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"parallel determinism gate passed ({SHARDS} shards, 2 workers, "
        f"{len(pooled_a)}-byte report compared 3 ways)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
