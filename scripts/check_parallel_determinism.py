"""Determinism gate for the parallel execution path.

Two workloads, both rendered into canonical JSON reports (logits digest,
per-layer spike statistics, input totals, dispatch counters) and
byte-compared:

* **direct-coded**: the same sharded evaluation three times -- twice
  through a 2-worker process pool and once through the serial fallback.
  Any difference between the two pooled runs, or between pooled and
  serial, is a determinism regression.
* **rate-coded**: counter-based encoding streams make rate coding a
  pure function of (seed, global sample index, timestep), so the gate
  demands more -- for the multi-shard geometries {2, 4} the full
  2-worker report (dispatch counters included) must byte-match the
  same-geometry serial run, and logits, spike statistics and input
  totals must byte-match the *unsharded* ``model.forward`` across all
  geometries {1, 2, 4}. (Dispatch counters tally per-(shard, timestep)
  decisions, so they are compared per geometry, not across geometries
  -- see ``repro/parallel/shard.py``.) Rate coding was exempt from this
  gate while encoder snapshots made it geometry-dependent; any
  difference now is a regression of the counter-stream invariant.

Wired into ``scripts/perf_smoke.sh``; run standalone with:

    PYTHONPATH=src python scripts/check_parallel_determinism.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np

from repro.parallel import sharded_forward
from repro.quant import FP32, convert
from repro.runtime import runtime_overrides
from repro.snn import build_vgg9
from repro.snn.encoding import RateEncoder
from repro.snn.neuron import LIFConfig

SHARDS = 4
TIMESTEPS = 2

RATE_GEOMETRIES = (1, 2, 4)
RATE_WORKERS = (1, 2)
RATE_TIMESTEPS = 4
RATE_SEED = 11


def build_workload():
    network = build_vgg9(
        num_classes=10,
        population=200,
        input_shape=(3, 16, 16),
        channel_scale=0.125,
        lif=LIFConfig(threshold=1.0),
        seed=42,
    )
    network.eval()
    deployable = convert(network, FP32)
    rng = np.random.default_rng(7)
    images = rng.random((12, 3, 16, 16)).astype(np.float32)
    return deployable, images


def canonical_report(output, counters: bool = True) -> bytes:
    """A byte-stable rendering of everything a merged run produces.

    ``counters=False`` drops the dispatch counters -- the one quantity
    that legitimately depends on the shard geometry -- for the
    cross-geometry comparisons.
    """
    record = {
        "logits_sha256": hashlib.sha256(
            np.ascontiguousarray(output.logits).tobytes()
        ).hexdigest(),
        "samples": output.stats.samples,
        "timesteps": output.stats.timesteps,
        "per_layer": output.stats.per_layer,
        "per_layer_timestep": output.stats.per_layer_timestep,
        "input_totals": output.input_spike_totals,
    }
    if counters:
        record["counters"] = {
            name: counter.as_dict()
            for name, counter in (output.runtime_counters or {}).items()
        }
    return json.dumps(record, sort_keys=True).encode("utf-8")


def check_direct(deployable, images, failures) -> int:
    pooled_a = canonical_report(
        sharded_forward(deployable, images, TIMESTEPS, shards=SHARDS, workers=2)
    )
    pooled_b = canonical_report(
        sharded_forward(deployable, images, TIMESTEPS, shards=SHARDS, workers=2)
    )
    serial = canonical_report(
        sharded_forward(deployable, images, TIMESTEPS, shards=SHARDS, workers=1)
    )
    if pooled_a != pooled_b:
        failures.append("direct: two 2-worker runs produced different reports")
    if pooled_a != serial:
        failures.append("direct: 2-worker run differs from the serial fallback")
    return len(pooled_a)


def check_rate(deployable, images, failures) -> int:
    """Counter-stream invariant: rate coding is geometry-invariant.

    shards=1 is compared against the unsharded forward only: with a
    single shard ``sharded_forward`` takes the in-process serial path
    for every worker count, so a pooled-vs-serial comparison there
    would exercise identical code and claim coverage it does not have.
    """
    unsharded = canonical_report(
        deployable.forward(images, RATE_TIMESTEPS, RateEncoder(seed=RATE_SEED)),
        counters=False,
    )
    report_bytes = 0
    for shards in RATE_GEOMETRIES:
        per_workers = {}
        worker_counts = RATE_WORKERS if shards > 1 else (1,)
        for workers in worker_counts:
            out = sharded_forward(
                deployable,
                images,
                RATE_TIMESTEPS,
                RateEncoder(seed=RATE_SEED),
                shards=shards,
                workers=workers,
            )
            per_workers[workers] = canonical_report(out)
            report_bytes = len(per_workers[workers])
            if canonical_report(out, counters=False) != unsharded:
                failures.append(
                    f"rate: shards={shards} workers={workers} differs from "
                    "the unsharded forward (logits/stats/input totals)"
                )
        if shards > 1 and per_workers[2] != per_workers[1]:
            failures.append(
                f"rate: shards={shards} pooled run differs from the serial "
                "fallback (full report incl. counters)"
            )
    return report_bytes


def main() -> int:
    deployable, images = build_workload()
    # Pin the default runtime config, with one exception: the canonical
    # report byte-compares dispatch counters, and cost-model routing is
    # wall-clock dependent by design (results are dispatch-invariant,
    # counters are not) -- so the gate runs the deterministic density
    # policy.
    failures = []
    with runtime_overrides(dispatch_policy="density"):
        direct_bytes = check_direct(deployable, images, failures)
        rate_bytes = check_rate(deployable, images, failures)
    for failure in failures:
        print(f"PARALLEL NON-DETERMINISM: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        "parallel determinism gate passed "
        f"(direct: {SHARDS} shards, 2 workers, {direct_bytes}-byte report "
        "compared 3 ways; rate: shards {2,4} x workers {1,2} vs serial, "
        f"shards {{1,2,4}} vs unsharded, {rate_bytes}-byte reports)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
